//===- hydraulics/FlowNetwork.h - Nonlinear flow-network solver -*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A nonlinear hydraulic network: junctions connected by edges, each edge a
/// series chain of FlowElements (pipes, valves, heat exchangers, pumps).
///
/// Solution method: nodal pressures are the unknowns. For a trial pressure
/// field, each edge's flow is found by inverting its strictly monotonic
/// dP(Q) relation with a bracketed scalar root search; junction continuity
/// residuals then drive a damped Newton iteration (finite-difference
/// Jacobian). This is the textbook "nodal method" for pipe networks and is
/// robust for the closed pumped loops the paper's racks are built from.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_HYDRAULICS_FLOWNETWORK_H
#define RCS_HYDRAULICS_FLOWNETWORK_H

#include "hydraulics/Components.h"
#include "support/Quantity.h"
#include "support/Status.h"

#include <memory>
#include <string>
#include <vector>

namespace rcs {
namespace hydraulics {

/// Index of a junction in a FlowNetwork.
using JunctionId = size_t;

/// Index of an edge in a FlowNetwork.
using EdgeId = size_t;

/// Result of a network solve.
struct FlowSolution {
  /// Signed edge flows, m^3/s, positive from->to.
  std::vector<double> EdgeFlowsM3PerS;
  /// Junction gauge pressures, Pa, relative to the reference junction.
  std::vector<double> JunctionPressuresPa;
  /// Worst junction continuity violation, m^3/s.
  double MaxContinuityErrorM3PerS = 0.0;
  int NewtonIterations = 0;
  /// Worst junction continuity error (m^3/s) at each accepted Newton
  /// iterate of the attempt that converged; entry 0 is the initial guess.
  /// The damped line search only accepts residual-descending steps, so
  /// the history is monotonically non-increasing — a stalled solve is
  /// diagnosable here without any trace sink attached.
  std::vector<double> ResidualHistory;

  /// Dimension-checked accessors (see support/Quantity.h).
  units::M3PerS edgeFlow(EdgeId E) const {
    return units::M3PerS(EdgeFlowsM3PerS[E]);
  }
  units::Pascal junctionPressure(JunctionId J) const {
    return units::Pascal(JunctionPressuresPa[J]);
  }
  units::M3PerS maxContinuityError() const {
    return units::M3PerS(MaxContinuityErrorM3PerS);
  }
};

/// Options controlling the hot path of FlowNetwork::solve.
struct FlowSolveOptions {
  /// How the Newton Jacobian is built. Analytic assembles the exact
  /// sparse continuity Jacobian from per-edge pressure-drop slopes
  /// (FlowElement::pressureDropSlopePaPerM3S) — one cheap assembly per
  /// iteration instead of one edge-inversion sweep per unknown.
  /// FiniteDifference is the seed probing path, kept for ablation
  /// benchmarks; the analytic path automatically falls back to it when
  /// the iteration stalls, so robustness is unchanged.
  enum class JacobianKind { Analytic, FiniteDifference };
  JacobianKind Jacobian = JacobianKind::Analytic;

  /// Junction pressures used to warm-start Newton (one entry per
  /// junction, Pa, typically FlowSolution::JunctionPressuresPa from a
  /// previous nearby solve; the reference junction's entry re-zeroes the
  /// gauge). Empty = cold start from zeros. A warm start from the wrong
  /// basin only costs iterations, never correctness: the converged
  /// solution of this network is unique by monotonicity.
  std::vector<double> WarmStartPressuresPa;
};

/// A hydraulic network of junctions and element-chain edges.
///
/// The network does not own fluid state: solve() takes the working fluid
/// and its bulk temperature, so one network can be re-solved as the coolant
/// heats up.
class FlowNetwork {
public:
  FlowNetwork();
  ~FlowNetwork();
  FlowNetwork(FlowNetwork &&);
  FlowNetwork &operator=(FlowNetwork &&);
  FlowNetwork(const FlowNetwork &) = delete;
  FlowNetwork &operator=(const FlowNetwork &) = delete;

  /// Adds a junction; the first junction added becomes the pressure
  /// reference (gauge zero) unless setReferenceJunction overrides it.
  JunctionId addJunction(std::string Name);

  /// Pins gauge pressure zero at \p Junction.
  void setReferenceJunction(JunctionId Junction);

  /// Adds an edge between two junctions carrying a series chain of
  /// elements. The network takes ownership of the elements.
  EdgeId addEdge(std::string Name, JunctionId From, JunctionId To,
                 std::vector<std::unique_ptr<FlowElement>> Elements);

  /// Appends an element to an existing edge.
  void appendElement(EdgeId Edge, std::unique_ptr<FlowElement> Element);

  /// Returns a mutable element pointer for runtime adjustments (valve
  /// openings, pump speeds). The network retains ownership.
  FlowElement *elementAt(EdgeId Edge, size_t Index);

  size_t numJunctions() const;
  size_t numEdges() const;
  const std::string &junctionName(JunctionId J) const;
  const std::string &edgeName(EdgeId E) const;
  JunctionId edgeFrom(EdgeId E) const;
  JunctionId edgeTo(EdgeId E) const;

  /// Total signed pressure drop across edge \p E at \p FlowM3PerS.
  double edgePressureDropPa(EdgeId E, double FlowM3PerS,
                            const fluids::Fluid &F, double TempC) const;

  /// Dimension-checked mirror of edgePressureDropPa.
  units::Pascal edgePressureDrop(EdgeId E, units::M3PerS Flow,
                                 const fluids::Fluid &F,
                                 units::Celsius T) const {
    return units::Pascal(edgePressureDropPa(E, Flow.value(), F, T.value()));
  }

  /// Solves for steady flows with \p F at bulk temperature \p TempC.
  ///
  /// \p FlowScaleM3PerS sets the expected magnitude of edge flows and is
  /// used to bracket the per-edge inversions; it only affects convergence
  /// speed, not the solution.
  Expected<FlowSolution> solve(const fluids::Fluid &F, double TempC,
                               double FlowScaleM3PerS = 1e-2) const;

  /// Overload taking explicit hot-path options (Jacobian construction,
  /// warm-start pressures). The default-options form above uses the
  /// analytic Jacobian with a cold start.
  Expected<FlowSolution> solve(const fluids::Fluid &F, double TempC,
                               double FlowScaleM3PerS,
                               const FlowSolveOptions &SolveOptions) const;

  /// Dimension-checked mirror of solve.
  Expected<FlowSolution> solve(const fluids::Fluid &F, units::Celsius T,
                               units::M3PerS FlowScale =
                                   units::M3PerS(1e-2)) const {
    return solve(F, T.value(), FlowScale.value());
  }

  /// Dimension-checked mirror of the explicit-options overload.
  Expected<FlowSolution> solve(const fluids::Fluid &F, units::Celsius T,
                               units::M3PerS FlowScale,
                               const FlowSolveOptions &SolveOptions) const {
    return solve(F, T.value(), FlowScale.value(), SolveOptions);
  }

private:
  struct Impl;
  std::unique_ptr<Impl> PImpl;
};

} // namespace hydraulics
} // namespace rcs

#endif // RCS_HYDRAULICS_FLOWNETWORK_H
