//===- telemetry/Profile.cpp - Span-aggregating profiler ----------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Profile.h"

#include "telemetry/Json.h"

#include <algorithm>
#include <cstdio>

using namespace rcs;
using namespace rcs::telemetry;

/// Aggregation node: one (parent path, name) position in the call tree,
/// merged across invocations.
struct Profiler::AggNode {
  uint64_t Count = 0;
  double TotalS = 0.0;
  double ChildrenS = 0.0;
  double MinS = 0.0;
  double MaxS = 0.0;
  std::map<std::string, AggNode, std::less<>> Children;
  std::map<std::string, ProfileAttr, std::less<>> Attrs;
};

struct Profiler::Impl {
  mutable rcs::Mutex Mutex;
  /// Completed root spans (ParentId 0), merged by name.
  std::map<std::string, AggNode, std::less<>> Roots RCS_GUARDED_BY(Mutex);
  /// Completed subtrees waiting for their parent span to finish, keyed
  /// by that parent's span id.
  std::map<uint64_t, std::map<std::string, AggNode, std::less<>>> Pending
      RCS_GUARDED_BY(Mutex);
  /// Duration distribution per span name, for p50/p95/p99.
  std::map<std::string, Histogram, std::less<>> ByName
      RCS_GUARDED_BY(Mutex);
  bool SeenSpan RCS_GUARDED_BY(Mutex) = false;
  double FirstStartS RCS_GUARDED_BY(Mutex) = 0.0;
  double LastEndS RCS_GUARDED_BY(Mutex) = 0.0;
};

namespace {

using AggNode = Profiler::AggNode;

void mergeInto(AggNode &Dst, AggNode &&Src) {
  if (Dst.Count == 0) {
    Dst.MinS = Src.MinS;
    Dst.MaxS = Src.MaxS;
  } else if (Src.Count != 0) {
    Dst.MinS = std::min(Dst.MinS, Src.MinS);
    Dst.MaxS = std::max(Dst.MaxS, Src.MaxS);
  }
  Dst.Count += Src.Count;
  Dst.TotalS += Src.TotalS;
  Dst.ChildrenS += Src.ChildrenS;
  for (auto &[Key, A] : Src.Attrs) {
    ProfileAttr &DstAttr = Dst.Attrs[Key];
    DstAttr.Sum += A.Sum;
    DstAttr.Count += A.Count;
  }
  for (auto &[Name, Child] : Src.Children) {
    auto It = Dst.Children.find(Name);
    if (It == Dst.Children.end())
      Dst.Children.emplace(Name, std::move(Child));
    else
      mergeInto(It->second, std::move(Child));
  }
}

} // namespace

Profiler::Profiler() : State(std::make_unique<Impl>()) {}
Profiler::~Profiler() = default;

void Profiler::instant(double, std::string_view, const EventField *,
                       size_t) {
  // The profiler aggregates spans only; instants pass through untouched.
}

Status Profiler::close() { return Status::ok(); }

void Profiler::span(const SpanRecord &Rec) {
  LockGuard Lock(State->Mutex);

  double EndS = Rec.StartS + Rec.DurationS;
  if (!State->SeenSpan) {
    State->SeenSpan = true;
    State->FirstStartS = Rec.StartS;
    State->LastEndS = EndS;
  } else {
    State->FirstStartS = std::min(State->FirstStartS, Rec.StartS);
    State->LastEndS = std::max(State->LastEndS, EndS);
  }

  auto HistIt = State->ByName.find(Rec.Name);
  if (HistIt == State->ByName.end())
    HistIt = State->ByName
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(std::string(Rec.Name)),
                          std::forward_as_tuple())
                 .first;
  HistIt->second.record(Rec.DurationS);

  AggNode Mine;
  Mine.Count = 1;
  Mine.TotalS = Rec.DurationS;
  Mine.MinS = Rec.DurationS;
  Mine.MaxS = Rec.DurationS;
  auto PendingIt = State->Pending.find(Rec.Context.SpanId);
  if (PendingIt != State->Pending.end()) {
    Mine.Children = std::move(PendingIt->second);
    State->Pending.erase(PendingIt);
    for (const auto &[Name, Child] : Mine.Children)
      Mine.ChildrenS += Child.TotalS;
  }
  for (size_t I = 0; I != Rec.NumAttrs; ++I) {
    const EventField &F = Rec.Attrs[I];
    double Value = 0.0;
    switch (F.FieldKind) {
    case EventField::Kind::Double:
      Value = F.DoubleValue;
      break;
    case EventField::Kind::Int:
      Value = static_cast<double>(F.IntValue);
      break;
    case EventField::Kind::Bool:
      // Booleans sum as 0/1, so "spans that warm-started" is a count.
      Value = F.BoolValue ? 1.0 : 0.0;
      break;
    case EventField::Kind::String:
      continue;
    }
    ProfileAttr &A = Mine.Attrs[std::string(F.Key)];
    A.Sum += Value;
    A.Count += 1;
  }

  auto &Dest = Rec.Context.ParentId == 0
                   ? State->Roots
                   : State->Pending[Rec.Context.ParentId];
  auto It = Dest.find(Rec.Name);
  if (It == Dest.end())
    Dest.emplace(std::string(Rec.Name), std::move(Mine));
  else
    mergeInto(It->second, std::move(Mine));
}

namespace {

ProfileNode toProfileNode(const std::string &Name, const AggNode &Node,
                          const std::map<std::string, Histogram,
                                         std::less<>> &ByName) {
  ProfileNode Out;
  Out.Name = Name;
  Out.Count = Node.Count;
  Out.TotalS = Node.TotalS;
  Out.SelfS = std::max(Node.TotalS - Node.ChildrenS, 0.0);
  Out.MinS = Node.MinS;
  Out.MaxS = Node.MaxS;
  auto HistIt = ByName.find(Name);
  if (HistIt != ByName.end()) {
    Out.P50S = HistIt->second.p50();
    Out.P95S = HistIt->second.p95();
    Out.P99S = HistIt->second.p99();
  }
  Out.Attrs.assign(Node.Attrs.begin(), Node.Attrs.end());
  Out.Children.reserve(Node.Children.size());
  for (const auto &[ChildName, Child] : Node.Children)
    Out.Children.push_back(toProfileNode(ChildName, Child, ByName));
  std::stable_sort(Out.Children.begin(), Out.Children.end(),
                   [](const ProfileNode &A, const ProfileNode &B) {
                     return A.TotalS > B.TotalS;
                   });
  return Out;
}

} // namespace

ProfileReport Profiler::report() const {
  LockGuard Lock(State->Mutex);

  // Orphans — spans whose parent never closed (still open at snapshot
  // time, or mis-nested) — surface at root level instead of vanishing.
  std::map<std::string, AggNode, std::less<>> Roots = State->Roots;
  for (const auto &[ParentId, Children] : State->Pending)
    for (const auto &[Name, Child] : Children) {
      AggNode Copy = Child;
      auto It = Roots.find(Name);
      if (It == Roots.end())
        Roots.emplace(Name, std::move(Copy));
      else
        mergeInto(It->second, std::move(Copy));
    }

  ProfileReport Report;
  Report.WallTimeS =
      State->SeenSpan ? State->LastEndS - State->FirstStartS : 0.0;
  Report.Roots.reserve(Roots.size());
  for (const auto &[Name, Node] : Roots) {
    Report.Roots.push_back(toProfileNode(Name, Node, State->ByName));
    Report.RootTotalS += Node.TotalS;
  }
  std::stable_sort(Report.Roots.begin(), Report.Roots.end(),
                   [](const ProfileNode &A, const ProfileNode &B) {
                     return A.TotalS > B.TotalS;
                   });
  return Report;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

void renderTextNode(std::string &Out, const ProfileNode &Node, int Depth,
                    double RootTotalS) {
  char Row[256];
  double Share =
      RootTotalS > 0.0 ? 100.0 * Node.TotalS / RootTotalS : 0.0;
  std::snprintf(Row, sizeof(Row), "%11.6f %11.6f %9llu %5.1f%%  ",
                Node.TotalS, Node.SelfS,
                static_cast<unsigned long long>(Node.Count), Share);
  Out += Row;
  Out.append(static_cast<size_t>(2 * Depth), ' ');
  Out += Node.Name;
  Out += '\n';
  for (const ProfileNode &Child : Node.Children)
    renderTextNode(Out, Child, Depth + 1, RootTotalS);
}

void renderJsonNode(std::string &Out, const ProfileNode &Node,
                    const std::string &Indent) {
  Out += "{\"name\": " + jsonQuote(Node.Name) +
         ", \"count\": " + std::to_string(Node.Count) +
         ", \"total_s\": " + jsonNumber(Node.TotalS) +
         ", \"self_s\": " + jsonNumber(Node.SelfS) +
         ", \"min_s\": " + jsonNumber(Node.MinS) +
         ", \"max_s\": " + jsonNumber(Node.MaxS) +
         ", \"p50_s\": " + jsonNumber(Node.P50S) +
         ", \"p95_s\": " + jsonNumber(Node.P95S) +
         ", \"p99_s\": " + jsonNumber(Node.P99S);
  if (!Node.Attrs.empty()) {
    Out += ", \"attrs\": {";
    bool First = true;
    for (const auto &[Key, A] : Node.Attrs) {
      Out += First ? "" : ", ";
      First = false;
      Out += jsonQuote(Key) + ": {\"sum\": " + jsonNumber(A.Sum) +
             ", \"count\": " + std::to_string(A.Count) + "}";
    }
    Out += "}";
  }
  Out += ", \"children\": [";
  std::string ChildIndent = Indent + "  ";
  bool First = true;
  for (const ProfileNode &Child : Node.Children) {
    Out += First ? "\n" + ChildIndent : ",\n" + ChildIndent;
    First = false;
    renderJsonNode(Out, Child, ChildIndent);
  }
  Out += First ? "]}" : "\n" + Indent + "]}";
}

} // namespace

std::string rcs::telemetry::renderProfileText(const ProfileReport &Report,
                                              std::string_view Name) {
  char Header[256];
  double Coverage = Report.WallTimeS > 0.0
                        ? 100.0 * Report.RootTotalS / Report.WallTimeS
                        : 0.0;
  std::snprintf(Header, sizeof(Header),
                "profile %.*s: wall %.6f s, root spans %.6f s (%.1f%% of "
                "wall)\n%11s %11s %9s %6s  span\n",
                static_cast<int>(Name.size()), Name.data(),
                Report.WallTimeS, Report.RootTotalS, Coverage, "total_s",
                "self_s", "count", "total");
  std::string Out = Header;
  for (const ProfileNode &Root : Report.Roots)
    renderTextNode(Out, Root, 0, Report.RootTotalS);
  return Out;
}

std::string rcs::telemetry::renderProfileJson(const ProfileReport &Report,
                                              std::string_view Name) {
  std::string Out = "{\n  \"schema\": \"skatsim-profile-v1\",\n";
  Out += "  \"name\": " + jsonQuote(Name) + ",\n";
  Out += "  \"wall_time_s\": " + jsonNumber(Report.WallTimeS) + ",\n";
  Out += "  \"root_total_s\": " + jsonNumber(Report.RootTotalS) + ",\n";
  Out += "  \"roots\": [";
  bool First = true;
  for (const ProfileNode &Root : Report.Roots) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    renderJsonNode(Out, Root, "    ");
  }
  Out += First ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}

Status rcs::telemetry::writeProfileFile(const ProfileReport &Report,
                                        std::string_view Name,
                                        const std::string &Path) {
  std::string Body = renderProfileJson(Report, Name);
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return Status::error("cannot open profile file '" + Path + "'");
  size_t Written = std::fwrite(Body.data(), 1, Body.size(), Out);
  bool Ok = Written == Body.size() && std::fclose(Out) == 0;
  if (!Ok)
    return Status::error("short write to profile file '" + Path + "'");
  return Status::ok();
}
