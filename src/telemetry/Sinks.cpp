//===- telemetry/Sinks.cpp - JSONL and Chrome trace_event sinks ---------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// JSONL: one self-describing JSON object per line, grep/jq-friendly.
/// Chrome: the trace_event JSON-array format, loadable in chrome://tracing
/// and Perfetto; spans become 'X' (complete) events, instants 'i' events.
///
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "telemetry/Json.h"

#include <cstdio>
#include <string>

using namespace rcs;
using namespace rcs::telemetry;

namespace {

/// Renders the shared {"key": value, ...} body of an event's fields.
std::string renderFields(const EventField *Fields, size_t NumFields) {
  std::string Out = "{";
  for (size_t I = 0; I != NumFields; ++I) {
    const EventField &F = Fields[I];
    if (I != 0)
      Out += ", ";
    Out += jsonQuote(F.Key) + ": ";
    switch (F.FieldKind) {
    case EventField::Kind::Double:
      Out += jsonNumber(F.DoubleValue);
      break;
    case EventField::Kind::Int:
      Out += std::to_string(F.IntValue);
      break;
    case EventField::Kind::Bool:
      Out += F.BoolValue ? "true" : "false";
      break;
    case EventField::Kind::String:
      Out += jsonQuote(F.StringValue);
      break;
    }
  }
  Out += "}";
  return Out;
}

/// Common FILE* ownership for both sinks.
class FileSink : public EventSink {
public:
  explicit FileSink(std::FILE *Out) : Out(Out) {}
  ~FileSink() override {
    if (Out)
      std::fclose(Out);
  }

  Status close() override {
    if (!Out)
      return Status::ok();
    writeFooter();
    bool Ok = std::fflush(Out) == 0 && !std::ferror(Out);
    Ok = std::fclose(Out) == 0 && Ok;
    Out = nullptr;
    return Ok ? Status::ok()
              : Status::error("error writing trace output");
  }

protected:
  virtual void writeFooter() {}
  std::FILE *Out;
};

class JsonlSink final : public FileSink {
public:
  using FileSink::FileSink;

  void instant(double TimeS, std::string_view Name,
               const EventField *Fields, size_t NumFields) override {
    if (!Out)
      return;
    std::fprintf(Out, "{\"ts_s\": %s, \"kind\": \"event\", \"name\": %s",
                 jsonNumber(TimeS).c_str(), jsonQuote(Name).c_str());
    if (NumFields)
      std::fprintf(Out, ", \"args\": %s",
                   renderFields(Fields, NumFields).c_str());
    std::fputs("}\n", Out);
  }

  void span(double StartS, double DurationS, int Depth,
            std::string_view Label) override {
    if (!Out)
      return;
    std::fprintf(Out,
                 "{\"ts_s\": %s, \"kind\": \"span\", \"name\": %s, "
                 "\"dur_s\": %s, \"depth\": %d}\n",
                 jsonNumber(StartS).c_str(), jsonQuote(Label).c_str(),
                 jsonNumber(DurationS).c_str(), Depth);
  }
};

class ChromeTraceSink final : public FileSink {
public:
  explicit ChromeTraceSink(std::FILE *Out) : FileSink(Out) {
    std::fputs("[", Out);
  }

  void instant(double TimeS, std::string_view Name,
               const EventField *Fields, size_t NumFields) override {
    if (!Out)
      return;
    separator();
    std::fprintf(Out,
                 "{\"name\": %s, \"cat\": \"skatsim\", \"ph\": \"i\", "
                 "\"ts\": %s, \"pid\": 1, \"tid\": 1, \"s\": \"t\"",
                 jsonQuote(Name).c_str(),
                 jsonNumber(TimeS * 1e6).c_str());
    if (NumFields)
      std::fprintf(Out, ", \"args\": %s",
                   renderFields(Fields, NumFields).c_str());
    std::fputs("}", Out);
  }

  void span(double StartS, double DurationS, int Depth,
            std::string_view Label) override {
    if (!Out)
      return;
    separator();
    // Depth is implied by ts/dur nesting within the single tid, but is
    // still recorded for tools reading the raw JSON.
    std::fprintf(Out,
                 "{\"name\": %s, \"cat\": \"skatsim\", \"ph\": \"X\", "
                 "\"ts\": %s, \"dur\": %s, \"pid\": 1, \"tid\": 1, "
                 "\"args\": {\"depth\": %d}}",
                 jsonQuote(Label).c_str(),
                 jsonNumber(StartS * 1e6).c_str(),
                 jsonNumber(DurationS * 1e6).c_str(), Depth);
  }

protected:
  void writeFooter() override { std::fputs("\n]\n", Out); }

private:
  void separator() {
    std::fputs(First ? "\n" : ",\n", Out);
    First = false;
  }
  bool First = true;
};

Expected<std::FILE *> openForWrite(const std::string &Path) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return Expected<std::FILE *>::error("cannot open trace file '" + Path +
                                        "'");
  return Out;
}

} // namespace

Expected<std::unique_ptr<EventSink>>
rcs::telemetry::makeJsonlSink(const std::string &Path) {
  Expected<std::FILE *> Out = openForWrite(Path);
  if (!Out)
    return Expected<std::unique_ptr<EventSink>>(Out.status());
  return std::unique_ptr<EventSink>(std::make_unique<JsonlSink>(*Out));
}

Expected<std::unique_ptr<EventSink>>
rcs::telemetry::makeChromeTraceSink(const std::string &Path) {
  Expected<std::FILE *> Out = openForWrite(Path);
  if (!Out)
    return Expected<std::unique_ptr<EventSink>>(Out.status());
  return std::unique_ptr<EventSink>(
      std::make_unique<ChromeTraceSink>(*Out));
}
