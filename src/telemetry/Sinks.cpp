//===- telemetry/Sinks.cpp - JSONL, Chrome and OTLP-style sinks ---------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// JSONL: one self-describing JSON object per line, grep/jq-friendly.
/// Chrome: the trace_event JSON-array format, loadable in chrome://tracing
/// and Perfetto; spans become 'X' (complete) events on their real thread
/// track with trace/span/parent ids and attributes in args, cross-thread
/// parent/child edges become 's'/'f' flow arrows, instants 'i' events.
/// OTLP-style: JSON-Lines with a self-identifying header line and hex
/// trace/span ids, the shape check_trace validates.
///
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "telemetry/Json.h"

#include <cinttypes>
#include <cstdio>
#include <string>

using namespace rcs;
using namespace rcs::telemetry;

namespace {

/// Renders the shared {"key": value, ...} body of an event's fields.
std::string renderFields(const EventField *Fields, size_t NumFields) {
  std::string Out = "{";
  for (size_t I = 0; I != NumFields; ++I) {
    const EventField &F = Fields[I];
    if (I != 0)
      Out += ", ";
    Out += jsonQuote(F.Key) + ": ";
    switch (F.FieldKind) {
    case EventField::Kind::Double:
      Out += jsonNumber(F.DoubleValue);
      break;
    case EventField::Kind::Int:
      Out += std::to_string(F.IntValue);
      break;
    case EventField::Kind::Bool:
      Out += F.BoolValue ? "true" : "false";
      break;
    case EventField::Kind::String:
      Out += jsonQuote(F.StringValue);
      break;
    }
  }
  Out += "}";
  return Out;
}

/// OTLP renders ids as lowercase hex: 16 digits for span ids, 32 for
/// trace ids (the spec's 8- and 16-byte ids). Zero renders as "".
std::string hexId(uint64_t Id, int Digits) {
  if (Id == 0)
    return "";
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%0*" PRIx64, Digits, Id);
  return Buffer;
}

/// Common FILE* ownership for both sinks.
class FileSink : public EventSink {
public:
  explicit FileSink(std::FILE *Out) : Out(Out) {}
  ~FileSink() override {
    if (Out)
      std::fclose(Out);
  }

  Status close() override {
    if (!Out)
      return Status::ok();
    writeFooter();
    bool Ok = std::fflush(Out) == 0 && !std::ferror(Out);
    Ok = std::fclose(Out) == 0 && Ok;
    Out = nullptr;
    return Ok ? Status::ok()
              : Status::error("error writing trace output");
  }

protected:
  virtual void writeFooter() {}
  std::FILE *Out;
};

class JsonlSink final : public FileSink {
public:
  using FileSink::FileSink;

  void instant(double TimeS, std::string_view Name,
               const EventField *Fields, size_t NumFields) override {
    if (!Out)
      return;
    std::fprintf(Out, "{\"ts_s\": %s, \"kind\": \"event\", \"name\": %s",
                 jsonNumber(TimeS).c_str(), jsonQuote(Name).c_str());
    if (NumFields)
      std::fprintf(Out, ", \"args\": %s",
                   renderFields(Fields, NumFields).c_str());
    std::fputs("}\n", Out);
  }

  void span(const SpanRecord &Rec) override {
    if (!Out)
      return;
    std::fprintf(Out,
                 "{\"ts_s\": %s, \"kind\": \"span\", \"name\": %s, "
                 "\"dur_s\": %s, \"depth\": %d, \"trace_id\": %" PRIu64
                 ", \"span_id\": %" PRIu64 ", \"parent_id\": %" PRIu64
                 ", \"thread\": %u",
                 jsonNumber(Rec.StartS).c_str(),
                 jsonQuote(Rec.Name).c_str(),
                 jsonNumber(Rec.DurationS).c_str(), Rec.Context.Depth,
                 Rec.Context.TraceId, Rec.Context.SpanId,
                 Rec.Context.ParentId, Rec.Context.ThreadId);
    if (Rec.NumAttrs)
      std::fprintf(Out, ", \"args\": %s",
                   renderFields(Rec.Attrs, Rec.NumAttrs).c_str());
    std::fputs("}\n", Out);
  }
};

class ChromeTraceSink final : public FileSink {
public:
  explicit ChromeTraceSink(std::FILE *Out) : FileSink(Out) {
    std::fputs("[", Out);
  }

  void instant(double TimeS, std::string_view Name,
               const EventField *Fields, size_t NumFields) override {
    if (!Out)
      return;
    separator();
    std::fprintf(Out,
                 "{\"name\": %s, \"cat\": \"skatsim\", \"ph\": \"i\", "
                 "\"ts\": %s, \"pid\": 1, \"tid\": 1, \"s\": \"t\"",
                 jsonQuote(Name).c_str(),
                 jsonNumber(TimeS * 1e6).c_str());
    if (NumFields)
      std::fprintf(Out, ", \"args\": %s",
                   renderFields(Fields, NumFields).c_str());
    std::fputs("}", Out);
  }

  void span(const SpanRecord &Rec) override {
    if (!Out)
      return;
    separator();
    std::fprintf(Out,
                 "{\"name\": %s, \"cat\": \"skatsim\", \"ph\": \"X\", "
                 "\"ts\": %s, \"dur\": %s, \"pid\": 1, \"tid\": %u, "
                 "\"args\": {\"depth\": %d, \"trace_id\": %" PRIu64
                 ", \"span_id\": %" PRIu64 ", \"parent_id\": %" PRIu64,
                 jsonQuote(Rec.Name).c_str(),
                 jsonNumber(Rec.StartS * 1e6).c_str(),
                 jsonNumber(Rec.DurationS * 1e6).c_str(),
                 Rec.Context.ThreadId, Rec.Context.Depth,
                 Rec.Context.TraceId, Rec.Context.SpanId,
                 Rec.Context.ParentId);
    for (size_t I = 0; I != Rec.NumAttrs; ++I) {
      const EventField &F = Rec.Attrs[I];
      std::fprintf(Out, ", %s: ", jsonQuote(F.Key).c_str());
      switch (F.FieldKind) {
      case EventField::Kind::Double:
        std::fputs(jsonNumber(F.DoubleValue).c_str(), Out);
        break;
      case EventField::Kind::Int:
        std::fprintf(Out, "%lld", F.IntValue);
        break;
      case EventField::Kind::Bool:
        std::fputs(F.BoolValue ? "true" : "false", Out);
        break;
      case EventField::Kind::String:
        std::fputs(jsonQuote(F.StringValue).c_str(), Out);
        break;
      }
    }
    std::fputs("}}", Out);

    // A parent open on another thread cannot enclose this slice on its
    // own track; draw the causal edge as a flow arrow from the parent's
    // track to this slice's start. Same-thread nesting needs none.
    if (Rec.ParentThreadId != 0 &&
        Rec.ParentThreadId != Rec.Context.ThreadId) {
      separator();
      std::fprintf(Out,
                   "{\"name\": \"parent\", \"cat\": \"skatsim\", "
                   "\"ph\": \"s\", \"id\": %" PRIu64
                   ", \"ts\": %s, \"pid\": 1, \"tid\": %u}",
                   Rec.Context.SpanId,
                   jsonNumber(Rec.StartS * 1e6).c_str(),
                   Rec.ParentThreadId);
      separator();
      std::fprintf(Out,
                   "{\"name\": \"parent\", \"cat\": \"skatsim\", "
                   "\"ph\": \"f\", \"bp\": \"e\", \"id\": %" PRIu64
                   ", \"ts\": %s, \"pid\": 1, \"tid\": %u}",
                   Rec.Context.SpanId,
                   jsonNumber(Rec.StartS * 1e6).c_str(),
                   Rec.Context.ThreadId);
    }
  }

protected:
  void writeFooter() override { std::fputs("\n]\n", Out); }

private:
  void separator() {
    std::fputs(First ? "\n" : ",\n", Out);
    First = false;
  }
  bool First = true;
};

class OtlpSpanSink final : public FileSink {
public:
  explicit OtlpSpanSink(std::FILE *Out) : FileSink(Out) {
    std::fputs("{\"kind\": \"span_trace_header\", "
               "\"schema\": \"skatsim-otlp-spans-v1\", \"version\": 1, "
               "\"service\": \"skatsim\"}\n",
               Out);
  }

  void instant(double TimeS, std::string_view Name,
               const EventField *Fields, size_t NumFields) override {
    if (!Out)
      return;
    std::fprintf(Out,
                 "{\"kind\": \"span_event\", \"name\": %s, "
                 "\"time_s\": %s",
                 jsonQuote(Name).c_str(), jsonNumber(TimeS).c_str());
    if (NumFields)
      std::fprintf(Out, ", \"attributes\": %s",
                   renderFields(Fields, NumFields).c_str());
    std::fputs("}\n", Out);
  }

  void span(const SpanRecord &Rec) override {
    if (!Out)
      return;
    std::fprintf(
        Out,
        "{\"kind\": \"span\", \"name\": %s, \"trace_id\": \"%s\", "
        "\"span_id\": \"%s\", \"parent_span_id\": \"%s\", "
        "\"start_s\": %s, \"end_s\": %s, \"duration_s\": %s, "
        "\"depth\": %d, \"thread\": %u",
        jsonQuote(Rec.Name).c_str(),
        hexId(Rec.Context.TraceId, 32).c_str(),
        hexId(Rec.Context.SpanId, 16).c_str(),
        hexId(Rec.Context.ParentId, 16).c_str(),
        jsonNumber(Rec.StartS).c_str(),
        jsonNumber(Rec.StartS + Rec.DurationS).c_str(),
        jsonNumber(Rec.DurationS).c_str(), Rec.Context.Depth,
        Rec.Context.ThreadId);
    if (Rec.NumAttrs)
      std::fprintf(Out, ", \"attributes\": %s",
                   renderFields(Rec.Attrs, Rec.NumAttrs).c_str());
    std::fputs("}\n", Out);
  }
};

class TeeSink final : public EventSink {
public:
  TeeSink(std::unique_ptr<EventSink> First,
          std::unique_ptr<EventSink> Second)
      : First(std::move(First)), Second(std::move(Second)) {}

  void instant(double TimeS, std::string_view Name,
               const EventField *Fields, size_t NumFields) override {
    if (First)
      First->instant(TimeS, Name, Fields, NumFields);
    if (Second)
      Second->instant(TimeS, Name, Fields, NumFields);
  }

  void span(const SpanRecord &Rec) override {
    if (First)
      First->span(Rec);
    if (Second)
      Second->span(Rec);
  }

  Status close() override {
    Status A = First ? First->close() : Status::ok();
    Status B = Second ? Second->close() : Status::ok();
    return A.isOk() ? B : A;
  }

private:
  std::unique_ptr<EventSink> First;
  std::unique_ptr<EventSink> Second;
};

Expected<std::FILE *> openForWrite(const std::string &Path) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return Expected<std::FILE *>::error("cannot open trace file '" + Path +
                                        "'");
  return Out;
}

} // namespace

Expected<std::unique_ptr<EventSink>>
rcs::telemetry::makeJsonlSink(const std::string &Path) {
  Expected<std::FILE *> Out = openForWrite(Path);
  if (!Out)
    return Expected<std::unique_ptr<EventSink>>(Out.status());
  return std::unique_ptr<EventSink>(std::make_unique<JsonlSink>(*Out));
}

Expected<std::unique_ptr<EventSink>>
rcs::telemetry::makeChromeTraceSink(const std::string &Path) {
  Expected<std::FILE *> Out = openForWrite(Path);
  if (!Out)
    return Expected<std::unique_ptr<EventSink>>(Out.status());
  return std::unique_ptr<EventSink>(
      std::make_unique<ChromeTraceSink>(*Out));
}

Expected<std::unique_ptr<EventSink>>
rcs::telemetry::makeOtlpSpanSink(const std::string &Path) {
  Expected<std::FILE *> Out = openForWrite(Path);
  if (!Out)
    return Expected<std::unique_ptr<EventSink>>(Out.status());
  return std::unique_ptr<EventSink>(std::make_unique<OtlpSpanSink>(*Out));
}

std::unique_ptr<EventSink>
rcs::telemetry::makeTeeSink(std::unique_ptr<EventSink> First,
                            std::unique_ptr<EventSink> Second) {
  return std::make_unique<TeeSink>(std::move(First), std::move(Second));
}
