//===- telemetry/Json.cpp - Minimal JSON emission and validation -------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Json.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

using namespace rcs;
using namespace rcs::telemetry;

std::string rcs::telemetry::jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", static_cast<unsigned>(C));
      else
        Out += C;
    }
  }
  return Out;
}

std::string rcs::telemetry::jsonQuote(std::string_view Text) {
  return "\"" + jsonEscape(Text) + "\"";
}

std::string rcs::telemetry::jsonNumber(double Value) {
  if (!std::isfinite(Value))
    return "null";
  // %.17g round-trips doubles; trim to %.12g for readability, which is
  // far beyond the physical precision of anything skatsim measures.
  return formatString("%.12g", Value);
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

namespace {

/// Validating recursive-descent JSON parser over a string_view. Tracks a
/// cursor; never materializes values.
class JsonValidator {
public:
  explicit JsonValidator(std::string_view Text) : Text(Text) {}

  Status validateDocument() {
    skipWhitespace();
    Status S = parseValue(0);
    if (!S.isOk())
      return S;
    skipWhitespace();
    if (Pos != Text.size())
      return errorHere("trailing characters after JSON value");
    return Status::ok();
  }

private:
  static constexpr int MaxDepth = 64;

  std::string_view Text;
  size_t Pos = 0;

  Status errorHere(const std::string &What) const {
    return Status::error(What + " at offset " + std::to_string(Pos));
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWhitespace() {
    while (!atEnd() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                        Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (atEnd() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool consumeLiteral(std::string_view Literal) {
    if (Text.substr(Pos, Literal.size()) != Literal)
      return false;
    Pos += Literal.size();
    return true;
  }

  Status parseValue(int Depth) {
    if (Depth > MaxDepth)
      return errorHere("JSON nesting too deep");
    if (atEnd())
      return errorHere("unexpected end of input");
    char C = peek();
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"')
      return parseString();
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    if (consumeLiteral("true") || consumeLiteral("false") ||
        consumeLiteral("null"))
      return Status::ok();
    return errorHere("unexpected character");
  }

  Status parseObject(int Depth) {
    consume('{');
    skipWhitespace();
    if (consume('}'))
      return Status::ok();
    while (true) {
      skipWhitespace();
      if (atEnd() || peek() != '"')
        return errorHere("expected object key string");
      Status Key = parseString();
      if (!Key.isOk())
        return Key;
      skipWhitespace();
      if (!consume(':'))
        return errorHere("expected ':' after object key");
      skipWhitespace();
      Status Value = parseValue(Depth + 1);
      if (!Value.isOk())
        return Value;
      skipWhitespace();
      if (consume('}'))
        return Status::ok();
      if (!consume(','))
        return errorHere("expected ',' or '}' in object");
    }
  }

  Status parseArray(int Depth) {
    consume('[');
    skipWhitespace();
    if (consume(']'))
      return Status::ok();
    while (true) {
      skipWhitespace();
      Status Value = parseValue(Depth + 1);
      if (!Value.isOk())
        return Value;
      skipWhitespace();
      if (consume(']'))
        return Status::ok();
      if (!consume(','))
        return errorHere("expected ',' or ']' in array");
    }
  }

  Status parseString() {
    consume('"');
    while (!atEnd()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return Status::ok();
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return errorHere("unescaped control character in string");
      if (C == '\\') {
        ++Pos;
        if (atEnd())
          return errorHere("dangling escape at end of input");
        char E = Text[Pos];
        if (E == 'u') {
          for (int I = 0; I != 4; ++I) {
            ++Pos;
            if (atEnd() || !std::isxdigit(static_cast<unsigned char>(
                               Text[Pos])))
              return errorHere("malformed \\u escape");
          }
        } else if (E != '"' && E != '\\' && E != '/' && E != 'b' &&
                   E != 'f' && E != 'n' && E != 'r' && E != 't') {
          return errorHere("invalid escape character");
        }
      }
      ++Pos;
    }
    return errorHere("unterminated string");
  }

  Status parseNumber() {
    consume('-');
    if (atEnd() || peek() < '0' || peek() > '9')
      return errorHere("malformed number");
    if (!consume('0'))
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    if (consume('.')) {
      if (atEnd() || peek() < '0' || peek() > '9')
        return errorHere("malformed number fraction");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!atEnd() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (atEnd() || peek() < '0' || peek() > '9')
        return errorHere("malformed number exponent");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    return Status::ok();
  }
};

} // namespace

Status rcs::telemetry::validateJson(std::string_view Text) {
  return JsonValidator(Text).validateDocument();
}

//===----------------------------------------------------------------------===//
// Materializing DOM parser
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (ValueKind != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

namespace {

/// Materializing recursive-descent parser. Kept separate from JsonValidator
/// so the high-volume validation path never pays for allocation.
class JsonDomParser {
public:
  explicit JsonDomParser(std::string_view Text) : Text(Text) {}

  Expected<JsonValue> parseDocument() {
    skipWhitespace();
    Expected<JsonValue> Value = parseValue(0);
    if (!Value)
      return Value;
    skipWhitespace();
    if (Pos != Text.size())
      return errorHere("trailing characters after JSON value");
    return Value;
  }

private:
  static constexpr int MaxDepth = 64;

  std::string_view Text;
  size_t Pos = 0;

  Expected<JsonValue> errorHere(const std::string &What) const {
    return Expected<JsonValue>::error(What + " at offset " +
                                      std::to_string(Pos));
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWhitespace() {
    while (!atEnd() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                        Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (atEnd() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool consumeLiteral(std::string_view Literal) {
    if (Text.substr(Pos, Literal.size()) != Literal)
      return false;
    Pos += Literal.size();
    return true;
  }

  Expected<JsonValue> parseValue(int Depth) {
    if (Depth > MaxDepth)
      return errorHere("JSON nesting too deep");
    if (atEnd())
      return errorHere("unexpected end of input");
    char C = peek();
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"') {
      JsonValue V;
      V.ValueKind = JsonValue::Kind::String;
      Status S = parseString(V.StringValue);
      if (!S.isOk())
        return Expected<JsonValue>(S);
      return V;
    }
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    JsonValue V;
    if (consumeLiteral("true")) {
      V.ValueKind = JsonValue::Kind::Bool;
      V.BoolValue = true;
      return V;
    }
    if (consumeLiteral("false")) {
      V.ValueKind = JsonValue::Kind::Bool;
      return V;
    }
    if (consumeLiteral("null"))
      return V;
    return errorHere("unexpected character");
  }

  Expected<JsonValue> parseObject(int Depth) {
    consume('{');
    JsonValue Obj;
    Obj.ValueKind = JsonValue::Kind::Object;
    skipWhitespace();
    if (consume('}'))
      return Obj;
    while (true) {
      skipWhitespace();
      if (atEnd() || peek() != '"')
        return errorHere("expected object key string");
      std::string Key;
      Status KeyStatus = parseString(Key);
      if (!KeyStatus.isOk())
        return Expected<JsonValue>(KeyStatus);
      skipWhitespace();
      if (!consume(':'))
        return errorHere("expected ':' after object key");
      skipWhitespace();
      Expected<JsonValue> Value = parseValue(Depth + 1);
      if (!Value)
        return Value;
      Obj.Members.emplace_back(std::move(Key), std::move(*Value));
      skipWhitespace();
      if (consume('}'))
        return Obj;
      if (!consume(','))
        return errorHere("expected ',' or '}' in object");
    }
  }

  Expected<JsonValue> parseArray(int Depth) {
    consume('[');
    JsonValue Arr;
    Arr.ValueKind = JsonValue::Kind::Array;
    skipWhitespace();
    if (consume(']'))
      return Arr;
    while (true) {
      skipWhitespace();
      Expected<JsonValue> Value = parseValue(Depth + 1);
      if (!Value)
        return Value;
      Arr.Items.push_back(std::move(*Value));
      skipWhitespace();
      if (consume(']'))
        return Arr;
      if (!consume(','))
        return errorHere("expected ',' or ']' in array");
    }
  }

  /// Appends \p Code as UTF-8 to \p Out. Lone surrogates are encoded as-is;
  /// scenario files are ASCII in practice.
  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xc0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    } else {
      Out += static_cast<char>(0xe0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    }
  }

  Status parseString(std::string &Out) {
    consume('"');
    while (!atEnd()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return Status::ok();
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return Status::error("unescaped control character in string at offset " +
                             std::to_string(Pos));
      if (C == '\\') {
        ++Pos;
        if (atEnd())
          return Status::error("dangling escape at end of input");
        char E = Text[Pos];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          unsigned Code = 0;
          for (int I = 0; I != 4; ++I) {
            ++Pos;
            if (atEnd() ||
                !std::isxdigit(static_cast<unsigned char>(Text[Pos])))
              return Status::error("malformed \\u escape at offset " +
                                   std::to_string(Pos));
            char H = Text[Pos];
            unsigned Digit = (H >= '0' && H <= '9') ? unsigned(H - '0')
                             : (H >= 'a' && H <= 'f')
                                 ? unsigned(H - 'a' + 10)
                                 : unsigned(H - 'A' + 10);
            Code = Code * 16 + Digit;
          }
          appendUtf8(Out, Code);
          break;
        }
        default:
          return Status::error("invalid escape character at offset " +
                               std::to_string(Pos));
        }
        ++Pos;
        continue;
      }
      Out += C;
      ++Pos;
    }
    return Status::error("unterminated string");
  }

  Expected<JsonValue> parseNumber() {
    size_t Start = Pos;
    consume('-');
    if (atEnd() || peek() < '0' || peek() > '9')
      return errorHere("malformed number");
    if (!consume('0'))
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    if (consume('.')) {
      if (atEnd() || peek() < '0' || peek() > '9')
        return errorHere("malformed number fraction");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!atEnd() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (atEnd() || peek() < '0' || peek() > '9')
        return errorHere("malformed number exponent");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    JsonValue V;
    V.ValueKind = JsonValue::Kind::Number;
    std::string Literal(Text.substr(Start, Pos - Start));
    V.NumberValue = std::strtod(Literal.c_str(), nullptr);
    return V;
  }
};

} // namespace

Expected<JsonValue> rcs::telemetry::parseJson(std::string_view Text) {
  return JsonDomParser(Text).parseDocument();
}

Status rcs::telemetry::validateJsonLines(std::string_view Text,
                                         size_t *NumLines) {
  size_t Valid = 0;
  size_t LineNo = 0;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = Text.substr(Start, End - Start);
    ++LineNo;
    bool Blank = true;
    for (char C : Line)
      if (C != ' ' && C != '\t' && C != '\r')
        Blank = false;
    if (!Blank) {
      Status S = validateJson(Line);
      if (!S.isOk())
        return Status::error("line " + std::to_string(LineNo) + ": " +
                             S.message());
      ++Valid;
    }
    if (End == Text.size())
      break;
    Start = End + 1;
  }
  if (NumLines)
    *NumLines = Valid;
  return Status::ok();
}
