//===- telemetry/Telemetry.h - Counters, timers, event tracing -*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead instrumentation for the solvers and simulators: a
/// process-wide Registry of named counters, gauges and histograms; RAII
/// ScopedTimer spans that nest and aggregate wall time per label; and a
/// pluggable structured event sink (JSONL or Chrome trace_event JSON).
///
/// Design constraints, matching the rest of skatsim:
///  - exception-free: fallible operations return Status/Expected;
///  - near-zero cost when no sink is attached: counter bumps are relaxed
///    atomic adds, event emission is one predictable branch, and the hot
///    paths allocate nothing (metric lookups are heterogeneous, so a
///    string_view never materializes a std::string after first use);
///  - references returned by Registry::counter()/gauge()/histogram() stay
///    valid for the registry's lifetime (node-based storage, and
///    resetMetrics() zeroes in place instead of erasing), so call sites
///    may cache them in static locals.
///
/// Metric names follow `subsystem.noun.unit` (see docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_TELEMETRY_TELEMETRY_H
#define RCS_TELEMETRY_TELEMETRY_H

#include "support/Status.h"
#include "support/ThreadSafety.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rcs {
namespace telemetry {

/// A monotonically increasing event count.
class Counter {
public:
  Counter() = default;
  Counter(const Counter &) = delete;
  Counter &operator=(const Counter &) = delete;

  void add(uint64_t Delta = 1) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  friend class Registry;
  std::atomic<uint64_t> Value{0};
};

/// A last-value metric (set wins; no aggregation).
class Gauge {
public:
  Gauge() = default;
  Gauge(const Gauge &) = delete;
  Gauge &operator=(const Gauge &) = delete;

  void set(double V) { Value.store(V, std::memory_order_relaxed); }
  double value() const { return Value.load(std::memory_order_relaxed); }

private:
  friend class Registry;
  std::atomic<double> Value{0.0};
};

/// A sample distribution: count/sum/min/max plus decade magnitude buckets
/// (coarse, but enough to see whether residuals cluster at 1e-12 or 1e-3).
class Histogram {
public:
  /// Bucket B spans [10^(B-9), 10^(B-8)); samples at or below 1e-9 in
  /// magnitude (including zero and negatives) clamp into bucket 0, samples
  /// at or above 1e8 into the last bucket.
  static constexpr int NumBuckets = 18;

  Histogram() = default;
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  void record(double Sample);

  uint64_t count() const;
  double sum() const;
  double mean() const; ///< Zero when empty.
  double minValue() const; ///< Zero when empty.
  double maxValue() const; ///< Zero when empty.
  uint64_t bucketCount(int Bucket) const;

  /// Estimated value at quantile \p Q (in [0, 1]) of the recorded
  /// magnitude distribution: the bucket containing the rank is found and
  /// the position within it log-interpolated, then clamped to the
  /// observed magnitude range. Decade buckets make this coarse (within
  /// a factor of ~2), which is enough to tell 1e-12 from 1e-3 residuals
  /// or 40 C from 90 C junctions. Zero when empty.
  double quantile(double Q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// The bucket \p Sample falls into.
  static int bucketFor(double Sample);
  /// Inclusive lower magnitude bound of \p Bucket.
  static double bucketLowerBound(int Bucket);

private:
  friend class Registry;
  double quantileLocked(double Q) const RCS_REQUIRES(Mutex);
  mutable rcs::Mutex Mutex;
  uint64_t Count RCS_GUARDED_BY(Mutex) = 0;
  double Sum RCS_GUARDED_BY(Mutex) = 0.0;
  double Min RCS_GUARDED_BY(Mutex) = 0.0;
  double Max RCS_GUARDED_BY(Mutex) = 0.0;
  uint64_t Buckets[NumBuckets] RCS_GUARDED_BY(Mutex) = {};
};

/// Aggregated wall time of all ScopedTimer spans sharing one label.
struct SpanStats {
  uint64_t Count = 0;
  double TotalS = 0.0;
  double MinS = 0.0;
  double MaxS = 0.0;
};

/// Point-in-time summary of one histogram, percentiles included.
struct HistogramSnapshot {
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double Mean = 0.0;
  double P50 = 0.0;
  double P95 = 0.0;
  double P99 = 0.0;
};

/// A consistent copy of every metric in a registry, for exposition
/// layers that render formats the registry itself does not know about
/// (Prometheus text, periodic JSONL snapshots).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, double>> Gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> Histograms;
  std::vector<std::pair<std::string, SpanStats>> Timers;
};

/// One key/value field of a structured event. Keys and string values are
/// not copied; they must outlive the emitEvent call (string literals in
/// practice).
struct EventField {
  enum class Kind { Double, Int, Bool, String };

  std::string_view Key;
  Kind FieldKind = Kind::Double;
  double DoubleValue = 0.0;
  long long IntValue = 0;
  bool BoolValue = false;
  std::string_view StringValue;

  EventField() = default;
  EventField(std::string_view Key, double Value)
      : Key(Key), FieldKind(Kind::Double), DoubleValue(Value) {}
  EventField(std::string_view Key, int Value)
      : Key(Key), FieldKind(Kind::Int), IntValue(Value) {}
  EventField(std::string_view Key, long long Value)
      : Key(Key), FieldKind(Kind::Int), IntValue(Value) {}
  EventField(std::string_view Key, unsigned long long Value)
      : Key(Key), FieldKind(Kind::Int),
        IntValue(static_cast<long long>(Value)) {}
  EventField(std::string_view Key, bool Value)
      : Key(Key), FieldKind(Kind::Bool), BoolValue(Value) {}
  EventField(std::string_view Key, std::string_view Value)
      : Key(Key), FieldKind(Kind::String), StringValue(Value) {}
  EventField(std::string_view Key, const char *Value)
      : Key(Key), FieldKind(Kind::String), StringValue(Value) {}
};

/// Causal identity of one span: which trace it belongs to, its own id,
/// and the span it nests under. Ids are process-unique and never zero for
/// a live span; zero means "none" (a root span has ParentId 0, a thread
/// with no open span has SpanId 0). The context propagates through a
/// thread-local (see Span.h) and can be carried across worker threads
/// with ScopedSpanParent, so a sweep replicate on a pool thread still
/// parents under the sweep root.
struct SpanContext {
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
  uint64_t ParentId = 0;
  /// Nesting depth of this span (0 = root).
  int Depth = 0;
  /// Small sequential id of the thread the span ran on (1-based).
  uint32_t ThreadId = 0;
};

/// Everything known about one completed span, handed to the sink as a
/// unit: timing, causal identity, and the structured attributes the span
/// collected while open. Attrs points into the emitting span's inline
/// storage and is only valid for the duration of the call.
struct SpanRecord {
  double StartS = 0.0;
  double DurationS = 0.0;
  std::string_view Name;
  SpanContext Context;
  /// Thread the parent span ran on (0 when no parent); differs from
  /// Context.ThreadId exactly when the parent was adopted across a
  /// thread boundary.
  uint32_t ParentThreadId = 0;
  const EventField *Attrs = nullptr;
  size_t NumAttrs = 0;
};

/// Destination for structured trace output. Implementations are invoked
/// under the owning registry's lock and must not call back into it.
class EventSink {
public:
  virtual ~EventSink() = default;

  /// An instantaneous event at \p TimeS (seconds since trace start).
  virtual void instant(double TimeS, std::string_view Name,
                       const EventField *Fields, size_t NumFields) = 0;

  /// A completed span with full causal context and attributes.
  virtual void span(const SpanRecord &Rec) = 0;

  /// Flushes and finalizes the output. Idempotent.
  virtual Status close() = 0;
};

/// Opens a JSON-Lines sink writing one event object per line to \p Path.
Expected<std::unique_ptr<EventSink>> makeJsonlSink(const std::string &Path);

/// Opens a Chrome trace_event-format sink (a JSON array loadable in
/// chrome://tracing and Perfetto) writing to \p Path. Spans carry their
/// trace/span/parent ids and attributes in args, land on their real
/// thread track, and cross-thread parent/child edges are drawn as flow
/// arrows.
Expected<std::unique_ptr<EventSink>>
makeChromeTraceSink(const std::string &Path);

/// Opens an OTLP-style span sink: JSON-Lines, one self-identifying
/// header line followed by one object per span/event with hex trace and
/// span ids (docs/OBSERVABILITY.md, "OTLP-style span schema"); validated
/// by tools/check_trace.
Expected<std::unique_ptr<EventSink>>
makeOtlpSpanSink(const std::string &Path);

/// A sink that forwards every call to both \p First and \p Second (close
/// statuses are combined). Lets a profiler observe spans while a trace
/// file is also being written.
std::unique_ptr<EventSink> makeTeeSink(std::unique_ptr<EventSink> First,
                                       std::unique_ptr<EventSink> Second);

/// A named-metric registry plus the optional event sink. Thread-safe.
///
/// Use Registry::global() for the process-wide instance the library's
/// instrumentation reports to; independent instances exist for tests.
class Registry {
public:
  Registry();
  ~Registry();
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  /// The process-wide registry.
  static Registry &global();

  /// Finds or creates the named metric. The returned reference stays
  /// valid for the registry's lifetime.
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Snapshot of one timer label's aggregate (zeroes when unknown).
  SpanStats timerStats(std::string_view Label) const;

  /// Seconds elapsed on the monotonic clock since this registry was
  /// created; the timebase of every event timestamp.
  double nowSeconds() const;

  /// True when an event sink is attached. Instrumented code uses this to
  /// skip building event fields entirely when tracing is off.
  bool tracingEnabled() const {
    return TracingOn.load(std::memory_order_relaxed);
  }

  /// Attaches \p NewSink (pass nullptr to detach). A previously attached
  /// sink is closed first; its close status is discarded.
  void setSink(std::unique_ptr<EventSink> NewSink);

  /// Flushes and detaches the active sink. No-op without one.
  Status closeSink();

  /// Emits an instantaneous structured event; a cheap no-op when no sink
  /// is attached.
  void emitEvent(std::string_view Name,
                 std::initializer_list<EventField> Fields);

  /// Copies every metric (counters, gauges, histogram summaries with
  /// percentiles, timer aggregates) into one consistent snapshot.
  MetricsSnapshot snapshotMetrics() const;

  /// Renders every metric (counters, gauges, histograms, timer
  /// aggregates) as one JSON object.
  std::string metricsJson() const;

  /// Writes metricsJson() to \p Path.
  Status writeMetricsFile(const std::string &Path) const;

  /// Zeroes every metric in place. Cached references remain valid; the
  /// event sink is untouched. Intended for tests and for the CLI between
  /// subcommands.
  void resetMetrics();

private:
  friend class ScopedTimer;
  friend class Span;

  /// Finds or creates the span aggregate for \p Label.
  SpanStats &spanStatsSlot(std::string_view Label);
  /// Folds one finished span into its aggregate and forwards it to the
  /// sink when tracing.
  void recordSpan(SpanStats &Slot, const SpanRecord &Rec);

  // Lock order: Registry::Mutex before any Histogram::Mutex (snapshot
  // and reset hold both); nothing ever locks them the other way.
  mutable rcs::Mutex Mutex;
  std::map<std::string, Counter, std::less<>> Counters
      RCS_GUARDED_BY(Mutex);
  std::map<std::string, Gauge, std::less<>> Gauges RCS_GUARDED_BY(Mutex);
  std::map<std::string, Histogram, std::less<>> Histograms
      RCS_GUARDED_BY(Mutex);
  std::map<std::string, SpanStats, std::less<>> Spans
      RCS_GUARDED_BY(Mutex);
  std::unique_ptr<EventSink> Sink RCS_GUARDED_BY(Mutex);
  std::atomic<bool> TracingOn{false};
  std::chrono::steady_clock::time_point Epoch; ///< Immutable after init.
};

namespace detail {
/// The calling thread's innermost open span context (mutable slot shared
/// by ScopedTimer, Span and ScopedSpanParent).
SpanContext &threadSpanContext();
/// Process-unique span id (never zero).
uint64_t nextSpanId();
/// Small sequential id of the calling thread (1-based, stable for the
/// thread's lifetime).
uint32_t currentThreadId();
/// Opens a new span context nested under the thread's current one (which
/// \p Parent receives) and installs it as current. The caller must
/// restore \p Parent on scope exit.
SpanContext openSpanContext(SpanContext &Parent);
} // namespace detail

/// The calling thread's innermost open span context; all ids zero when no
/// span or timer is open. Capture this to parent work handed to another
/// thread (see ScopedSpanParent in Span.h).
inline SpanContext currentSpanContext() {
  return detail::threadSpanContext();
}

/// RAII wall-time span. Construction starts the clock; destruction folds
/// the elapsed time into the registry's per-label aggregate and, when a
/// sink is attached, emits a span event. Timers nest: each instance
/// becomes the thread's current span context while open, so spans and
/// timers parent under each other freely.
///
/// \p Label is not copied and must outlive the timer (string literals).
/// For spans that carry structured attributes, use telemetry::Span
/// (Span.h) instead.
class ScopedTimer {
public:
  explicit ScopedTimer(std::string_view Label)
      : ScopedTimer(Registry::global(), Label) {}
  ScopedTimer(Registry &Reg, std::string_view Label);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Registry &Reg;
  std::string_view Label;
  SpanStats &Slot;
  double StartS;
  SpanContext Parent;
};

} // namespace telemetry
} // namespace rcs

#endif // RCS_TELEMETRY_TELEMETRY_H
