//===- telemetry/Bench.cpp - Machine-readable bench summaries -----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Bench.h"

#include "telemetry/Json.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <cstdlib>

using namespace rcs;
using namespace rcs::telemetry;

BenchReport::BenchReport(std::string Name)
    : Name(std::move(Name)), Start(std::chrono::steady_clock::now()) {}

void BenchReport::addMetric(std::string_view Key, double Value) {
  Metrics.emplace_back(std::string(Key), jsonNumber(Value));
}

void BenchReport::addMetric(std::string_view Key, long long Value) {
  Metrics.emplace_back(std::string(Key), std::to_string(Value));
}

void BenchReport::addMetric(std::string_view Key, bool Value) {
  Metrics.emplace_back(std::string(Key), Value ? "true" : "false");
}

void BenchReport::addMetric(std::string_view Key, std::string_view Value) {
  Metrics.emplace_back(std::string(Key), jsonQuote(Value));
}

std::string BenchReport::path() const {
  // Read once from the bench main thread; nothing in skatsim calls
  // setenv, so the getenv race concurrency-mt-unsafe guards against
  // cannot occur.
  const char *Dir = std::getenv("SKATSIM_BENCH_DIR"); // NOLINT(concurrency-mt-unsafe)
  std::string Prefix = Dir && *Dir ? std::string(Dir) + "/" : "";
  return Prefix + "BENCH_" + Name + ".json";
}

Status BenchReport::write(bool Passed) const {
  double WallS = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  std::string Body = "{\n  \"bench\": " + jsonQuote(Name) +
                     ",\n  \"passed\": " + (Passed ? "true" : "false") +
                     ",\n  \"wall_time_s\": " + jsonNumber(WallS) +
                     ",\n  \"metrics\": {";
  bool First = true;
  for (const auto &[Key, Rendered] : Metrics) {
    Body += First ? "\n" : ",\n";
    First = false;
    Body += "    " + jsonQuote(Key) + ": " + Rendered;
  }
  Body += First ? "},\n" : "\n  },\n";
  Body += "  \"telemetry\": " + Registry::global().metricsJson() + "}\n";

  std::string Path = path();
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return Status::error("cannot open bench report '" + Path + "'");
  size_t Written = std::fwrite(Body.data(), 1, Body.size(), Out);
  bool Ok = Written == Body.size() && std::fclose(Out) == 0;
  if (!Ok)
    return Status::error("short write to bench report '" + Path + "'");
  return Status::ok();
}

void BenchReport::writeOrWarn(bool Passed) const {
  Status S = write(Passed);
  if (!S.isOk())
    std::fprintf(stderr, "warning: %s\n", S.message().c_str());
}
