//===- telemetry/Profile.h - Span-aggregating profiler ---------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A profiler that consumes SpanRecords (as an EventSink, so it attaches
/// to a Registry like any trace sink, alone or behind makeTeeSink) and
/// collapses them into a call tree: nodes merge by span name per parent
/// path, accumulating invocation counts, total and self wall time, and
/// per-name p50/p95/p99 via Histogram::quantile. Numeric span attributes
/// accumulate per node (sum + count), so "how many Newton iterations did
/// this subtree burn" falls out of the same report.
///
/// Children complete before their parents (RAII), so the tree is built
/// bottom-up: a finished span claims the aggregated subtrees of its
/// already-finished children (keyed by its span id) and files itself
/// under its parent's id. report() lifts whatever is still unclaimed —
/// spans whose parent never closed — to the root level rather than
/// dropping it.
///
/// `skatsim profile <command>` drives this end to end: run any workload,
/// print renderProfileText(), write PROFILE_<name>.json
/// (renderProfileJson(), validated by tools/check_trace).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_TELEMETRY_PROFILE_H
#define RCS_TELEMETRY_PROFILE_H

#include "telemetry/Telemetry.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rcs {
namespace telemetry {

/// Accumulated numeric attribute across a node's invocations.
struct ProfileAttr {
  double Sum = 0.0;
  uint64_t Count = 0;
};

/// One call-tree node of a finished profile, merged by name under its
/// parent. Quantiles are per span *name* (shared by every node with that
/// name), matching how the histogram is recorded.
struct ProfileNode {
  std::string Name;
  uint64_t Count = 0;
  double TotalS = 0.0;
  double SelfS = 0.0; ///< TotalS minus the children's TotalS, floored at 0.
  double MinS = 0.0;
  double MaxS = 0.0;
  double P50S = 0.0;
  double P95S = 0.0;
  double P99S = 0.0;
  std::vector<std::pair<std::string, ProfileAttr>> Attrs;
  std::vector<ProfileNode> Children; ///< Sorted by TotalS, descending.
};

/// A snapshot of the profiler's aggregation.
struct ProfileReport {
  /// Wall-clock extent of the observed spans: latest end minus earliest
  /// start on the registry clock. Zero when no span was seen.
  double WallTimeS = 0.0;
  /// Sum of the root spans' total time.
  double RootTotalS = 0.0;
  std::vector<ProfileNode> Roots; ///< Sorted by TotalS, descending.
};

/// Span-consuming profiler. Thread safety follows the sink contract: the
/// registry serializes span()/instant() under its lock; report() may be
/// called concurrently from other threads.
class Profiler final : public EventSink {
public:
  Profiler();
  ~Profiler() override;

  void instant(double TimeS, std::string_view Name,
               const EventField *Fields, size_t NumFields) override;
  void span(const SpanRecord &Rec) override;
  Status close() override;

  /// Collapses the aggregation so far into a report.
  ProfileReport report() const;

  struct AggNode; ///< Implementation detail, defined in Profile.cpp.

private:
  struct Impl;
  std::unique_ptr<Impl> State;
};

/// Renders an aligned, indented call-tree table for terminals.
std::string renderProfileText(const ProfileReport &Report,
                              std::string_view Name);

/// Renders the PROFILE_<name>.json document ("skatsim-profile-v1";
/// docs/OBSERVABILITY.md, "Profiler report format").
std::string renderProfileJson(const ProfileReport &Report,
                              std::string_view Name);

/// Writes renderProfileJson() to \p Path.
Status writeProfileFile(const ProfileReport &Report, std::string_view Name,
                        const std::string &Path);

} // namespace telemetry
} // namespace rcs

#endif // RCS_TELEMETRY_PROFILE_H
