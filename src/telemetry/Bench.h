//===- telemetry/Bench.h - Machine-readable bench summaries ----*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BenchReport: every bench_* binary writes a BENCH_<name>.json summary
/// (wall time, pass/fail, its key figures of merit, and a snapshot of the
/// global telemetry metrics) alongside its human-readable stdout, so bench
/// trajectories can be diffed across commits by tools instead of eyes.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_TELEMETRY_BENCH_H
#define RCS_TELEMETRY_BENCH_H

#include "support/Status.h"

#include <chrono>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rcs {
namespace telemetry {

/// Accumulates a bench run's figures of merit and writes them as JSON.
///
/// Construction starts the wall clock. write() renders
///   {"bench": ..., "passed": ..., "wall_time_s": ...,
///    "metrics": {...}, "telemetry": {...}}
/// to BENCH_<name>.json in the working directory (override the directory
/// with the SKATSIM_BENCH_DIR environment variable).
class BenchReport {
public:
  explicit BenchReport(std::string Name);

  /// Records one figure of merit; insertion order is preserved.
  void addMetric(std::string_view Key, double Value);
  void addMetric(std::string_view Key, long long Value);
  void addMetric(std::string_view Key, int Value) {
    addMetric(Key, static_cast<long long>(Value));
  }
  void addMetric(std::string_view Key, bool Value);
  void addMetric(std::string_view Key, std::string_view Value);

  /// Output path: <dir>/BENCH_<name>.json.
  std::string path() const;

  /// Stamps wall time and writes the summary file.
  Status write(bool Passed) const;

  /// Convenience: write() but failures only warn on stderr, so a bench's
  /// exit code keeps reflecting its shape check alone.
  void writeOrWarn(bool Passed) const;

private:
  std::string Name;
  std::chrono::steady_clock::time_point Start;
  /// Key and pre-rendered JSON value.
  std::vector<std::pair<std::string, std::string>> Metrics;
};

} // namespace telemetry
} // namespace rcs

#endif // RCS_TELEMETRY_BENCH_H
