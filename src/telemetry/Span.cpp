//===- telemetry/Span.cpp - Causal RAII spans with attributes -----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Span.h"

using namespace rcs;
using namespace rcs::telemetry;

Span::Span(Registry &Reg, std::string_view Name)
    : Reg(Reg), Name(Name), Slot(Reg.spanStatsSlot(Name)),
      StartS(Reg.nowSeconds()), Context(detail::openSpanContext(Parent)) {}

Span::~Span() {
  SpanRecord Rec;
  Rec.StartS = StartS;
  Rec.DurationS = Reg.nowSeconds() - StartS;
  Rec.Name = Name;
  Rec.Context = Context;
  Rec.ParentThreadId = Parent.ThreadId;
  Rec.Attrs = Attrs;
  Rec.NumAttrs = NumAttrs;
  detail::threadSpanContext() = Parent;
  Reg.recordSpan(Slot, Rec);
}
