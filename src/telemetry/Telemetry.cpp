//===- telemetry/Telemetry.cpp - Counters, timers, event tracing --------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "telemetry/Json.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

using namespace rcs;
using namespace rcs::telemetry;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

int Histogram::bucketFor(double Sample) {
  double Magnitude = std::fabs(Sample);
  if (!(Magnitude > 1e-9)) // Also catches NaN.
    return 0;
  int Exponent = static_cast<int>(std::floor(std::log10(Magnitude)));
  return std::clamp(Exponent + 9, 0, NumBuckets - 1);
}

double Histogram::bucketLowerBound(int Bucket) {
  assert(Bucket >= 0 && Bucket < NumBuckets && "bucket out of range");
  return std::pow(10.0, Bucket - 9);
}

void Histogram::record(double Sample) {
  LockGuard Lock(Mutex);
  if (Count == 0) {
    Min = Sample;
    Max = Sample;
  } else {
    Min = std::min(Min, Sample);
    Max = std::max(Max, Sample);
  }
  ++Count;
  Sum += Sample;
  ++Buckets[bucketFor(Sample)];
}

uint64_t Histogram::count() const {
  LockGuard Lock(Mutex);
  return Count;
}

double Histogram::sum() const {
  LockGuard Lock(Mutex);
  return Sum;
}

double Histogram::mean() const {
  LockGuard Lock(Mutex);
  return Count == 0 ? 0.0 : Sum / static_cast<double>(Count);
}

double Histogram::minValue() const {
  LockGuard Lock(Mutex);
  return Count == 0 ? 0.0 : Min;
}

double Histogram::maxValue() const {
  LockGuard Lock(Mutex);
  return Count == 0 ? 0.0 : Max;
}

uint64_t Histogram::bucketCount(int Bucket) const {
  assert(Bucket >= 0 && Bucket < NumBuckets && "bucket out of range");
  LockGuard Lock(Mutex);
  return Buckets[Bucket];
}

double Histogram::quantileLocked(double Q) const {
  if (Count == 0)
    return 0.0;
  Q = std::clamp(Q, 0.0, 1.0);
  double MaxMagnitude = std::max(std::fabs(Min), std::fabs(Max));

  // Rank of the requested quantile among the recorded magnitudes, then
  // the bucket holding it.
  double Rank = Q * static_cast<double>(Count);
  uint64_t Cumulative = 0;
  for (int B = 0; B != NumBuckets; ++B) {
    if (Buckets[B] == 0)
      continue;
    uint64_t Next = Cumulative + Buckets[B];
    if (Rank <= static_cast<double>(Next) || B == NumBuckets - 1 ||
        Next == Count) {
      // Log-interpolate the position inside the decade; bucket 0 also
      // holds zeros, so it interpolates linearly from zero instead.
      double Within =
          (Rank - static_cast<double>(Cumulative)) /
          static_cast<double>(Buckets[B]);
      Within = std::clamp(Within, 0.0, 1.0);
      double Lower = bucketLowerBound(B);
      double Estimate = B == 0 ? Within * Lower
                               : Lower * std::pow(10.0, Within);
      return std::min(Estimate, MaxMagnitude);
    }
    Cumulative = Next;
  }
  return MaxMagnitude;
}

double Histogram::quantile(double Q) const {
  LockGuard Lock(Mutex);
  return quantileLocked(Q);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Registry::Registry() : Epoch(std::chrono::steady_clock::now()) {}

Registry::~Registry() {
  // Best effort: a sink still attached at teardown is flushed; failures
  // have nowhere to be reported.
  (void)closeSink();
}

Registry &Registry::global() {
  static Registry Instance;
  return Instance;
}

Counter &Registry::counter(std::string_view Name) {
  LockGuard Lock(Mutex);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(Name), std::forward_as_tuple())
             .first;
  return It->second;
}

Gauge &Registry::gauge(std::string_view Name) {
  LockGuard Lock(Mutex);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(Name), std::forward_as_tuple())
             .first;
  return It->second;
}

Histogram &Registry::histogram(std::string_view Name) {
  LockGuard Lock(Mutex);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(Name), std::forward_as_tuple())
             .first;
  return It->second;
}

SpanStats Registry::timerStats(std::string_view Label) const {
  LockGuard Lock(Mutex);
  auto It = Spans.find(Label);
  return It == Spans.end() ? SpanStats() : It->second;
}

double Registry::nowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Epoch)
      .count();
}

void Registry::setSink(std::unique_ptr<EventSink> NewSink) {
  (void)closeSink();
  LockGuard Lock(Mutex);
  Sink = std::move(NewSink);
  TracingOn.store(Sink != nullptr, std::memory_order_relaxed);
}

Status Registry::closeSink() {
  std::unique_ptr<EventSink> Old;
  {
    LockGuard Lock(Mutex);
    Old = std::move(Sink);
    TracingOn.store(false, std::memory_order_relaxed);
  }
  return Old ? Old->close() : Status::ok();
}

void Registry::emitEvent(std::string_view Name,
                         std::initializer_list<EventField> Fields) {
  if (!tracingEnabled())
    return;
  double TimeS = nowSeconds();
  LockGuard Lock(Mutex);
  if (Sink)
    Sink->instant(TimeS, Name, Fields.begin(), Fields.size());
}

SpanStats &Registry::spanStatsSlot(std::string_view Label) {
  LockGuard Lock(Mutex);
  auto It = Spans.find(Label);
  if (It == Spans.end())
    It = Spans.emplace(std::string(Label), SpanStats()).first;
  return It->second;
}

void Registry::recordSpan(SpanStats &Slot, const SpanRecord &Rec) {
  LockGuard Lock(Mutex);
  if (Slot.Count == 0) {
    Slot.MinS = Rec.DurationS;
    Slot.MaxS = Rec.DurationS;
  } else {
    Slot.MinS = std::min(Slot.MinS, Rec.DurationS);
    Slot.MaxS = std::max(Slot.MaxS, Rec.DurationS);
  }
  ++Slot.Count;
  Slot.TotalS += Rec.DurationS;
  if (Sink)
    Sink->span(Rec);
}

MetricsSnapshot Registry::snapshotMetrics() const {
  LockGuard Lock(Mutex);
  MetricsSnapshot Snapshot;
  Snapshot.Counters.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    Snapshot.Counters.emplace_back(Name, C.value());
  Snapshot.Gauges.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    Snapshot.Gauges.emplace_back(Name, G.value());
  Snapshot.Histograms.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms) {
    LockGuard HLock(H.Mutex);
    HistogramSnapshot S;
    S.Count = H.Count;
    S.Sum = H.Sum;
    S.Min = H.Count ? H.Min : 0.0;
    S.Max = H.Count ? H.Max : 0.0;
    S.Mean = H.Count ? H.Sum / static_cast<double>(H.Count) : 0.0;
    S.P50 = H.quantileLocked(0.50);
    S.P95 = H.quantileLocked(0.95);
    S.P99 = H.quantileLocked(0.99);
    Snapshot.Histograms.emplace_back(Name, S);
  }
  Snapshot.Timers.reserve(Spans.size());
  for (const auto &[Label, S] : Spans)
    Snapshot.Timers.emplace_back(Label, S);
  return Snapshot;
}

std::string Registry::metricsJson() const {
  LockGuard Lock(Mutex);
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + jsonQuote(Name) + ": " +
           std::to_string(C.value());
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + jsonQuote(Name) + ": " + jsonNumber(G.value());
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    LockGuard HLock(H.Mutex);
    Out += "    " + jsonQuote(Name) + ": {\"count\": " +
           std::to_string(H.Count) + ", \"sum\": " + jsonNumber(H.Sum) +
           ", \"min\": " + jsonNumber(H.Count ? H.Min : 0.0) +
           ", \"max\": " + jsonNumber(H.Count ? H.Max : 0.0) +
           ", \"mean\": " +
           jsonNumber(H.Count ? H.Sum / static_cast<double>(H.Count)
                              : 0.0) +
           ", \"p50\": " + jsonNumber(H.quantileLocked(0.50)) +
           ", \"p95\": " + jsonNumber(H.quantileLocked(0.95)) +
           ", \"p99\": " + jsonNumber(H.quantileLocked(0.99)) + "}";
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"timers\": {";
  First = true;
  for (const auto &[Label, S] : Spans) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + jsonQuote(Label) + ": {\"count\": " +
           std::to_string(S.Count) + ", \"total_s\": " +
           jsonNumber(S.TotalS) + ", \"min_s\": " + jsonNumber(S.MinS) +
           ", \"max_s\": " + jsonNumber(S.MaxS) + "}";
  }
  Out += First ? "}\n}\n" : "\n  }\n}\n";
  return Out;
}

Status Registry::writeMetricsFile(const std::string &Path) const {
  std::string Body = metricsJson();
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return Status::error("cannot open metrics file '" + Path + "'");
  size_t Written = std::fwrite(Body.data(), 1, Body.size(), Out);
  bool Ok = Written == Body.size() && std::fclose(Out) == 0;
  if (!Ok)
    return Status::error("short write to metrics file '" + Path + "'");
  return Status::ok();
}

void Registry::resetMetrics() {
  LockGuard Lock(Mutex);
  for (auto &[Name, C] : Counters)
    C.Value.store(0, std::memory_order_relaxed);
  for (auto &[Name, G] : Gauges)
    G.Value.store(0.0, std::memory_order_relaxed);
  for (auto &[Name, H] : Histograms) {
    LockGuard HLock(H.Mutex);
    H.Count = 0;
    H.Sum = H.Min = H.Max = 0.0;
    std::fill(std::begin(H.Buckets), std::end(H.Buckets), 0);
  }
  for (auto &[Label, S] : Spans)
    S = SpanStats();
}

//===----------------------------------------------------------------------===//
// Span context and ScopedTimer
//===----------------------------------------------------------------------===//

SpanContext &detail::threadSpanContext() {
  thread_local SpanContext Context;
  return Context;
}

uint64_t detail::nextSpanId() {
  static std::atomic<uint64_t> NextId{1};
  return NextId.fetch_add(1, std::memory_order_relaxed);
}

uint32_t detail::currentThreadId() {
  static std::atomic<uint32_t> NextThread{1};
  thread_local uint32_t Id =
      NextThread.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

SpanContext detail::openSpanContext(SpanContext &Parent) {
  SpanContext &Ctx = threadSpanContext();
  Parent = Ctx;
  SpanContext Mine;
  Mine.SpanId = nextSpanId();
  Mine.ParentId = Parent.SpanId;
  Mine.TraceId = Parent.SpanId ? Parent.TraceId : Mine.SpanId;
  Mine.Depth = Parent.SpanId ? Parent.Depth + 1 : 0;
  Mine.ThreadId = currentThreadId();
  Ctx = Mine;
  return Mine;
}

ScopedTimer::ScopedTimer(Registry &Reg, std::string_view Label)
    : Reg(Reg), Label(Label), Slot(Reg.spanStatsSlot(Label)),
      StartS(Reg.nowSeconds()) {
  (void)detail::openSpanContext(Parent);
}

ScopedTimer::~ScopedTimer() {
  SpanContext &Ctx = detail::threadSpanContext();
  SpanRecord Rec;
  Rec.StartS = StartS;
  Rec.DurationS = Reg.nowSeconds() - StartS;
  Rec.Name = Label;
  Rec.Context = Ctx;
  Rec.ParentThreadId = Parent.ThreadId;
  Ctx = Parent;
  Reg.recordSpan(Slot, Rec);
}
