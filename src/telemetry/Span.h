//===- telemetry/Span.h - Causal RAII spans with attributes ----*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hierarchical span tracing on top of the Telemetry.h registry. A Span is
/// a ScopedTimer that additionally carries a propagated SpanContext (trace
/// id, span id, parent id, depth, thread) and a small fixed set of
/// structured attributes (Newton iterations, factor-cache hit, dt, ...)
/// handed to the event sink as one SpanRecord on destruction.
///
/// Context propagation rules (docs/OBSERVABILITY.md):
///  - the thread's innermost open Span or ScopedTimer is the implicit
///    parent of the next one opened on that thread;
///  - a root span (no open parent) starts a new trace whose TraceId is its
///    own SpanId;
///  - to parent work running on another thread (a worker-pool item under a
///    sweep root), capture currentSpanContext() on the submitting thread
///    and install it on the worker with ScopedSpanParent.
///
/// Cost model matches the rest of the telemetry layer: with no sink
/// attached a Span is two mutex-guarded aggregate updates and never
/// allocates after the label's first use; attribute setters write into
/// inline storage. Keys and string values are not copied and must outlive
/// the span (string literals in practice).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_TELEMETRY_SPAN_H
#define RCS_TELEMETRY_SPAN_H

#include "telemetry/Telemetry.h"

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rcs {
namespace telemetry {

/// RAII causal span. Construction opens a context nested under the
/// thread's current span; destruction restores the parent context and
/// records one SpanRecord (aggregate fold always, sink emission when
/// tracing).
class Span {
public:
  /// Inline attribute capacity; setters beyond this are dropped (the
  /// hot paths attach a handful of scalars, not payloads).
  static constexpr size_t MaxAttrs = 8;

  explicit Span(std::string_view Name) : Span(Registry::global(), Name) {}
  Span(Registry &Reg, std::string_view Name);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// This span's causal identity, capturable for cross-thread parenting.
  const SpanContext &context() const { return Context; }

  /// Attaches one structured attribute. Last writer wins for a repeated
  /// key only in the sense that both are emitted; call once per key.
  void attr(std::string_view Key, double Value) {
    push(EventField(Key, Value));
  }
  void attr(std::string_view Key, int Value) {
    push(EventField(Key, Value));
  }
  void attr(std::string_view Key, long long Value) {
    push(EventField(Key, Value));
  }
  void attr(std::string_view Key, unsigned long long Value) {
    push(EventField(Key, Value));
  }
  void attr(std::string_view Key, bool Value) {
    push(EventField(Key, Value));
  }
  void attr(std::string_view Key, std::string_view Value) {
    push(EventField(Key, Value));
  }
  void attr(std::string_view Key, const char *Value) {
    push(EventField(Key, Value));
  }

private:
  void push(const EventField &F) {
    if (NumAttrs < MaxAttrs)
      Attrs[NumAttrs++] = F;
  }

  Registry &Reg;
  std::string_view Name;
  SpanStats &Slot;
  double StartS;
  SpanContext Parent;
  SpanContext Context;
  EventField Attrs[MaxAttrs];
  size_t NumAttrs = 0;
};

/// Installs \p Parent as the calling thread's current span context for
/// the scope's duration, so spans opened here nest under a span that is
/// open on another thread. Restores the previous context on destruction.
class ScopedSpanParent {
public:
  explicit ScopedSpanParent(const SpanContext &Parent)
      : Saved(detail::threadSpanContext()) {
    detail::threadSpanContext() = Parent;
  }
  ~ScopedSpanParent() { detail::threadSpanContext() = Saved; }
  ScopedSpanParent(const ScopedSpanParent &) = delete;
  ScopedSpanParent &operator=(const ScopedSpanParent &) = delete;

private:
  SpanContext Saved;
};

} // namespace telemetry
} // namespace rcs

#endif // RCS_TELEMETRY_SPAN_H
