//===- telemetry/Json.h - Minimal JSON emission and validation -*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny JSON helpers shared by the telemetry sinks and the trace checker:
/// string escaping, number rendering, and a validating (non-materializing)
/// recursive-descent parser. skatsim emits and checks JSON; it never needs
/// a DOM, so none is built.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_TELEMETRY_JSON_H
#define RCS_TELEMETRY_JSON_H

#include "support/Status.h"

#include <string>
#include <string_view>

namespace rcs {
namespace telemetry {

/// Escapes \p Text for inclusion inside a JSON string literal (quotes not
/// added): backslash, double quote, and control characters.
std::string jsonEscape(std::string_view Text);

/// Renders \p Text as a quoted, escaped JSON string literal.
std::string jsonQuote(std::string_view Text);

/// Renders a double as a JSON number. Non-finite values, which JSON cannot
/// represent, render as null.
std::string jsonNumber(double Value);

/// Checks that \p Text is exactly one syntactically valid JSON value
/// (surrounding whitespace allowed).
Status validateJson(std::string_view Text);

/// Checks JSON-Lines input: every non-empty line must be a valid JSON
/// value. Returns the number of valid lines through \p NumLines when
/// non-null.
Status validateJsonLines(std::string_view Text, size_t *NumLines = nullptr);

} // namespace telemetry
} // namespace rcs

#endif // RCS_TELEMETRY_JSON_H
