//===- telemetry/Json.h - Minimal JSON emission and validation -*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny JSON helpers shared by the telemetry sinks, the trace checker, and
/// the fault-scenario loader: string escaping, number rendering, a
/// validating (non-materializing) recursive-descent parser for high-volume
/// trace checking, and a small materializing DOM (JsonValue) for the few
/// places that read JSON documents (fault scenario files).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_TELEMETRY_JSON_H
#define RCS_TELEMETRY_JSON_H

#include "support/Status.h"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rcs {
namespace telemetry {

/// Escapes \p Text for inclusion inside a JSON string literal (quotes not
/// added): backslash, double quote, and control characters.
std::string jsonEscape(std::string_view Text);

/// Renders \p Text as a quoted, escaped JSON string literal.
std::string jsonQuote(std::string_view Text);

/// Renders a double as a JSON number. Non-finite values, which JSON cannot
/// represent, render as null.
std::string jsonNumber(double Value);

/// Checks that \p Text is exactly one syntactically valid JSON value
/// (surrounding whitespace allowed).
Status validateJson(std::string_view Text);

/// Checks JSON-Lines input: every non-empty line must be a valid JSON
/// value. Returns the number of valid lines through \p NumLines when
/// non-null.
Status validateJsonLines(std::string_view Text, size_t *NumLines = nullptr);

/// A materialized JSON value. Small and copyable; intended for reading
/// configuration-sized documents (fault scenarios), not telemetry volumes.
/// Object member order is preserved; duplicate keys keep the first match on
/// lookup.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind ValueKind = Kind::Null;
  bool BoolValue = false;
  double NumberValue = 0.0;
  std::string StringValue;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;

  bool isNull() const { return ValueKind == Kind::Null; }
  bool isBool() const { return ValueKind == Kind::Bool; }
  bool isNumber() const { return ValueKind == Kind::Number; }
  bool isString() const { return ValueKind == Kind::String; }
  bool isArray() const { return ValueKind == Kind::Array; }
  bool isObject() const { return ValueKind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *find(std::string_view Key) const;
};

/// Parses exactly one JSON document (surrounding whitespace allowed) into a
/// DOM. Shares the validator's grammar, limits, and error wording.
Expected<JsonValue> parseJson(std::string_view Text);

} // namespace telemetry
} // namespace rcs

#endif // RCS_TELEMETRY_JSON_H
