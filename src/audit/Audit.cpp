//===- audit/Audit.cpp - Physics & solver invariant auditing --------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "audit/Audit.h"

#include "monitor/Alarm.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace rcs {
namespace audit {

namespace {

/// Formats \p V for JSON output. Non-finite drift (a diverged state fed
/// back into the audit) is rendered as the sentinel 9e99 so the document
/// stays parseable while the verdict still fails every budget.
void appendJsonNumber(std::string &Out, double V) {
  char Buf[40];
  if (!std::isfinite(V)) {
    std::snprintf(Buf, sizeof(Buf), "9e99");
  } else {
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  }
  Out += Buf;
}

const char *verdictFor(const DriftStats &Stats, double WarnFraction,
                       double CriticalFraction) {
  if (Stats.MaxFraction > CriticalFraction)
    return "FAIL";
  if (Stats.MaxFraction > WarnFraction)
    return "WARN";
  return "PASS";
}

struct InvariantRow {
  const char *Name;
  const char *Unit;
  const DriftStats *Stats;
  double WarnFraction;
  double CriticalFraction;
};

/// The five drift invariants in report order. \p Summary and \p Budgets
/// must outlive the returned rows.
std::vector<InvariantRow> invariantRows(const AuditSummary &Summary,
                                        const DriftBudgets &Budgets) {
  return {
      {"energy_balance", "W", &Summary.Energy,
       Budgets.EnergyFractionWarn.value(),
       Budgets.EnergyFractionCritical.value()},
      {"energy_balance_per_node", "W", &Summary.EnergyNode,
       Budgets.EnergyNodeFractionWarn.value(),
       Budgets.EnergyNodeFractionCritical.value()},
      {"coupling_drift", "W", &Summary.Coupling,
       Budgets.CouplingFractionWarn.value(),
       Budgets.CouplingFractionCritical.value()},
      {"flow_continuity", "m3_per_s", &Summary.Continuity,
       Budgets.ContinuityFractionWarn.value(),
       Budgets.ContinuityFractionCritical.value()},
      {"pressure_closure", "Pa", &Summary.PressureClosure,
       Budgets.PressureFractionWarn.value(),
       Budgets.PressureFractionCritical.value()},
  };
}

} // namespace

bool AuditSummary::withinBudgets(const DriftBudgets &Budgets) const {
  for (const InvariantRow &Row : invariantRows(*this, Budgets))
    if (Row.Stats->MaxFraction > Row.CriticalFraction)
      return false;
  if (UnconvergedSolves > 0)
    return false;
  return MaxNewtonIterations <= Budgets.NewtonIterationsCritical;
}

//===----------------------------------------------------------------------===//
// Alarm bank
//===----------------------------------------------------------------------===//

monitor::Supervisor makeAuditSupervisor(const DriftBudgets &Budgets,
                                        telemetry::Registry *Reg) {
  auto FractionAlarm = [&Budgets](units::Scalar Warn, units::Scalar Critical) {
    monitor::AlarmConfig Config;
    Config.WarnThreshold = Warn.value();
    Config.CriticalThreshold = Critical.value();
    Config.HighIsBad = true;
    Config.Hysteresis = 0.1 * Warn.value();
    Config.DebounceSamples = Budgets.DebounceSamples;
    Config.LatchCritical = Budgets.LatchCritical;
    return Config;
  };
  monitor::AlarmConfig NewtonAlarm;
  NewtonAlarm.WarnThreshold = Budgets.NewtonIterationsWarn;
  NewtonAlarm.CriticalThreshold = Budgets.NewtonIterationsCritical;
  NewtonAlarm.HighIsBad = true;
  NewtonAlarm.Hysteresis = 1.0;
  NewtonAlarm.DebounceSamples = Budgets.DebounceSamples;
  NewtonAlarm.LatchCritical = Budgets.LatchCritical;

  std::vector<std::pair<std::string, monitor::AlarmConfig>> Sensors;
  Sensors.emplace_back("audit.energy_fraction",
                       FractionAlarm(Budgets.EnergyFractionWarn,
                                     Budgets.EnergyFractionCritical));
  Sensors.emplace_back("audit.energy_node_fraction",
                       FractionAlarm(Budgets.EnergyNodeFractionWarn,
                                     Budgets.EnergyNodeFractionCritical));
  Sensors.emplace_back("audit.coupling_fraction",
                       FractionAlarm(Budgets.CouplingFractionWarn,
                                     Budgets.CouplingFractionCritical));
  Sensors.emplace_back("audit.continuity_fraction",
                       FractionAlarm(Budgets.ContinuityFractionWarn,
                                     Budgets.ContinuityFractionCritical));
  Sensors.emplace_back("audit.pressure_fraction",
                       FractionAlarm(Budgets.PressureFractionWarn,
                                     Budgets.PressureFractionCritical));
  Sensors.emplace_back("audit.newton_iterations", NewtonAlarm);
  return monitor::Supervisor(std::move(Sensors), Reg);
}

//===----------------------------------------------------------------------===//
// Record stream
//===----------------------------------------------------------------------===//

struct PhysicsAuditor::Stream {
  std::FILE *File = nullptr;
  std::string Path;
  bool WriteFailed = false;

  ~Stream() {
    if (File)
      std::fclose(File);
  }

  void line(const std::string &Text) {
    if (!File)
      return;
    if (std::fputs(Text.c_str(), File) < 0 || std::fputc('\n', File) == EOF)
      WriteFailed = true;
  }
};

//===----------------------------------------------------------------------===//
// PhysicsAuditor
//===----------------------------------------------------------------------===//

PhysicsAuditor::PhysicsAuditor(const DriftBudgets &Budgets,
                               telemetry::Registry *Reg)
    : Budgets(Budgets),
      Reg(Reg ? Reg : &telemetry::Registry::global()),
      Bank(std::make_unique<monitor::Supervisor>(
          makeAuditSupervisor(Budgets, this->Reg))) {
  telemetry::Registry &R = *this->Reg;
  ThermalStepCount = &R.counter("audit.energy.steps");
  FlowSolveCount = &R.counter("audit.flow.solves");
  ViolationCount = &R.counter("audit.budget.violations");
  BreachCount = &R.counter("audit.alarm.breaches");
  EnergyFractionGauge = &R.gauge("audit.energy.max_fraction");
  ContinuityFractionGauge = &R.gauge("audit.continuity.max_fraction");
  PressureFractionGauge = &R.gauge("audit.pressure_closure.max_fraction");
  CouplingFractionGauge = &R.gauge("audit.coupling.max_fraction");
  EnergyResidualHist = &R.histogram("audit.energy.residual_w");
  ContinuityHist = &R.histogram("audit.flow.continuity_m3s");
  PressureClosureHist = &R.histogram("audit.flow.pressure_closure_pa");
  NewtonIterationsHist = &R.histogram("audit.newton.iterations");

  Bank->setTransitionCallback([this](const monitor::AlarmTransition &T) {
    if (Out && Out->File) {
      std::string Line = "{\"kind\": \"audit_alarm\", \"t_s\": ";
      appendJsonNumber(Line, T.TimeS);
      Line += ", \"sensor\": \"" + T.Sensor + "\", \"from\": \"";
      Line += monitor::alarmStateName(T.From);
      Line += "\", \"to\": \"";
      Line += monitor::alarmStateName(T.To);
      Line += "\", \"value\": ";
      appendJsonNumber(Line, T.Value);
      Line += "}";
      Out->line(Line);
    }
    if (T.To == monitor::AlarmState::Critical) {
      BreachCount->add();
      if (OnCritical)
        OnCritical(T.Sensor, T.TimeS);
    }
  });
}

PhysicsAuditor::~PhysicsAuditor() = default;

void PhysicsAuditor::bumpViolation(DriftStats &Stats, double Fraction,
                                   double WarnFraction) {
  if (Fraction > WarnFraction) {
    ++Stats.Violations;
    ViolationCount->add();
  }
}

EnergyClosure
PhysicsAuditor::recordThermalStep(const thermal::ThermalNetwork &Net,
                                  const std::vector<double> &Before,
                                  const std::vector<double> &After,
                                  double DtS) {
  EnergyClosure Closure;
  std::vector<double> Residuals = Net.transientResidualsW(Before, After, DtS);
  double Global = 0.0;
  double WorstNode = 0.0;
  for (double R : Residuals) {
    Global += R;
    WorstNode = std::max(WorstNode, std::fabs(R));
  }
  Closure.ResidualW = Global;
  Closure.MaxNodeResidualW = WorstNode;
  Closure.ThroughputW = Net.totalSourcePowerW();
  double Scale = std::max(std::fabs(Closure.ThroughputW),
                          Budgets.ThroughputFloor.value());
  Closure.Fraction = std::fabs(Global) / Scale;
  double NodeFraction = WorstNode / Scale;

  ++Summary.ThermalSteps;
  ++Summary.Energy.Samples;
  Summary.Energy.MaxAbs = std::max(Summary.Energy.MaxAbs, std::fabs(Global));
  Summary.Energy.SumAbs += std::fabs(Global);
  Summary.Energy.MaxFraction =
      std::max(Summary.Energy.MaxFraction, Closure.Fraction);
  bumpViolation(Summary.Energy, Closure.Fraction,
                Budgets.EnergyFractionWarn.value());

  ++Summary.EnergyNode.Samples;
  Summary.EnergyNode.MaxAbs = std::max(Summary.EnergyNode.MaxAbs, WorstNode);
  Summary.EnergyNode.SumAbs += WorstNode;
  Summary.EnergyNode.MaxFraction =
      std::max(Summary.EnergyNode.MaxFraction, NodeFraction);
  bumpViolation(Summary.EnergyNode, NodeFraction,
                Budgets.EnergyNodeFractionWarn.value());

  LastEnergyFraction = Closure.Fraction;
  LastEnergyNodeFraction = NodeFraction;
  LastEnergyResidualW = Global;

  ThermalStepCount->add();
  EnergyResidualHist->record(Global);
  EnergyFractionGauge->set(Summary.Energy.MaxFraction);
  return Closure;
}

void PhysicsAuditor::recordCouplingDrift(double DriftW, double ThroughputW) {
  double Scale =
      std::max(std::fabs(ThroughputW), Budgets.ThroughputFloor.value());
  double Fraction = std::fabs(DriftW) / Scale;
  ++Summary.Coupling.Samples;
  Summary.Coupling.MaxAbs = std::max(Summary.Coupling.MaxAbs,
                                     std::fabs(DriftW));
  Summary.Coupling.SumAbs += std::fabs(DriftW);
  Summary.Coupling.MaxFraction =
      std::max(Summary.Coupling.MaxFraction, Fraction);
  bumpViolation(Summary.Coupling, Fraction,
                Budgets.CouplingFractionWarn.value());
  LastCouplingFraction = Fraction;
  LastCouplingDriftW = DriftW;
  CouplingFractionGauge->set(Summary.Coupling.MaxFraction);
}

void PhysicsAuditor::recordFlowSolution(const hydraulics::FlowNetwork &Net,
                                        const hydraulics::FlowSolution &Sol,
                                        const fluids::Fluid &F, double TempC,
                                        double FlowScaleM3PerS) {
  size_t NumJunctions = Net.numJunctions();
  size_t NumEdges = Net.numEdges();
  if (Sol.EdgeFlowsM3PerS.size() != NumEdges ||
      Sol.JunctionPressuresPa.size() != NumJunctions)
    return; // Solution from a different network; nothing to audit.

  // Junction continuity, recomputed from the edge flows (not trusted from
  // the solver's own MaxContinuityErrorM3PerS).
  std::vector<double> NetInflow(NumJunctions, 0.0);
  for (size_t E = 0; E != NumEdges; ++E) {
    double Q = Sol.EdgeFlowsM3PerS[E];
    NetInflow[Net.edgeFrom(E)] -= Q;
    NetInflow[Net.edgeTo(E)] += Q;
  }
  double WorstContinuity = 0.0;
  for (double Inflow : NetInflow)
    WorstContinuity = std::max(WorstContinuity, std::fabs(Inflow));
  double FlowScale = std::max(FlowScaleM3PerS, 1e-12);
  double ContinuityFraction = WorstContinuity / FlowScale;

  // Per-edge pressure closure: the solved flow must reproduce the nodal
  // pressure difference through the edge's own dP(Q) relation.
  double WorstClosure = 0.0;
  double PressureScale = 1.0;
  for (size_t E = 0; E != NumEdges; ++E) {
    double DropPa = Net.edgePressureDropPa(E, Sol.EdgeFlowsM3PerS[E], F,
                                           TempC);
    double NodalPa = Sol.JunctionPressuresPa[Net.edgeFrom(E)] -
                     Sol.JunctionPressuresPa[Net.edgeTo(E)];
    WorstClosure = std::max(WorstClosure, std::fabs(DropPa - NodalPa));
    PressureScale = std::max(PressureScale, std::fabs(DropPa));
  }
  for (double P : Sol.JunctionPressuresPa)
    PressureScale = std::max(PressureScale, std::fabs(P));
  double PressureFraction = WorstClosure / PressureScale;

  // Convergence health: iteration count, residual-trajectory monotonicity
  // and the final residual against the solver's own tolerance.
  double Tolerance = std::max(1e-10, 1e-6 * FlowScaleM3PerS);
  bool Monotone = true;
  for (size_t I = 1; I < Sol.ResidualHistory.size(); ++I)
    if (Sol.ResidualHistory[I] > Sol.ResidualHistory[I - 1])
      Monotone = false;
  bool Converged = Sol.ResidualHistory.empty() ||
                   Sol.ResidualHistory.back() <= Tolerance;

  ++Summary.FlowSolves;
  ++Summary.Continuity.Samples;
  Summary.Continuity.MaxAbs =
      std::max(Summary.Continuity.MaxAbs, WorstContinuity);
  Summary.Continuity.SumAbs += WorstContinuity;
  Summary.Continuity.MaxFraction =
      std::max(Summary.Continuity.MaxFraction, ContinuityFraction);
  bumpViolation(Summary.Continuity, ContinuityFraction,
                Budgets.ContinuityFractionWarn.value());

  ++Summary.PressureClosure.Samples;
  Summary.PressureClosure.MaxAbs =
      std::max(Summary.PressureClosure.MaxAbs, WorstClosure);
  Summary.PressureClosure.SumAbs += WorstClosure;
  Summary.PressureClosure.MaxFraction =
      std::max(Summary.PressureClosure.MaxFraction, PressureFraction);
  bumpViolation(Summary.PressureClosure, PressureFraction,
                Budgets.PressureFractionWarn.value());

  Summary.MaxNewtonIterations =
      std::max(Summary.MaxNewtonIterations, Sol.NewtonIterations);
  if (!Monotone)
    ++Summary.NonMonotoneResiduals;
  if (!Converged)
    ++Summary.UnconvergedSolves;

  LastContinuityFraction = ContinuityFraction;
  LastPressureFraction = PressureFraction;
  LastNewtonIterationCount = Sol.NewtonIterations;
  LastContinuityErrM3PerS = WorstContinuity;
  LastPressureClosurePa = WorstClosure;

  FlowSolveCount->add();
  ContinuityHist->record(WorstContinuity);
  PressureClosureHist->record(WorstClosure);
  NewtonIterationsHist->record(Sol.NewtonIterations);
  ContinuityFractionGauge->set(Summary.Continuity.MaxFraction);
  PressureFractionGauge->set(Summary.PressureClosure.MaxFraction);
}

monitor::SupervisoryReport PhysicsAuditor::updateAlarms(double TimeS) {
  double Values[6] = {LastEnergyFraction,     LastEnergyNodeFraction,
                      LastCouplingFraction,   LastContinuityFraction,
                      LastPressureFraction,   LastNewtonIterationCount};
  return Bank->update(TimeS, Values, 6);
}

void PhysicsAuditor::setCriticalCallback(
    std::function<void(const std::string &Sensor, double TimeS)> Callback) {
  OnCritical = std::move(Callback);
}

Status PhysicsAuditor::attachStream(const std::string &Path) {
  auto NewStream = std::make_unique<Stream>();
  NewStream->File = std::fopen(Path.c_str(), "w");
  if (!NewStream->File)
    return Status::error("cannot open audit stream '" + Path + "'");
  NewStream->Path = Path;
  Out = std::move(NewStream);
  Out->line("{\"kind\": \"audit_trace_header\", "
            "\"schema\": \"skatsim-audit-v1\", \"invariants\": "
            "[\"energy_balance\", \"energy_balance_per_node\", "
            "\"coupling_drift\", \"flow_continuity\", \"pressure_closure\", "
            "\"newton_health\"]}");
  return Status::ok();
}

bool PhysicsAuditor::streaming() const { return Out && Out->File; }

void PhysicsAuditor::emitStreamRecord(double TimeS) {
  if (!streaming())
    return;
  std::string Line = "{\"kind\": \"audit_sample\", \"t_s\": ";
  appendJsonNumber(Line, TimeS);
  Line += ", \"energy_residual_w\": ";
  appendJsonNumber(Line, LastEnergyResidualW);
  Line += ", \"energy_fraction\": ";
  appendJsonNumber(Line, LastEnergyFraction);
  Line += ", \"coupling_drift_w\": ";
  appendJsonNumber(Line, LastCouplingDriftW);
  Line += ", \"continuity_m3_per_s\": ";
  appendJsonNumber(Line, LastContinuityErrM3PerS);
  Line += ", \"pressure_closure_pa\": ";
  appendJsonNumber(Line, LastPressureClosurePa);
  Line += ", \"newton_iterations\": ";
  appendJsonNumber(Line, LastNewtonIterationCount);
  rcsystem::AlarmLevel Worst = rcsystem::AlarmLevel::Normal;
  for (size_t I = 0, E = Bank->numSensors(); I != E; ++I)
    Worst = std::max(Worst, Bank->sensor(I).level());
  Line += ", \"worst_level\": \"";
  switch (Worst) {
  case rcsystem::AlarmLevel::Normal:
    Line += "normal";
    break;
  case rcsystem::AlarmLevel::Warning:
    Line += "warning";
    break;
  case rcsystem::AlarmLevel::Critical:
    Line += "critical";
    break;
  }
  Line += "\"}";
  Out->line(Line);
}

Status PhysicsAuditor::finishStream() {
  if (!Out)
    return Status::ok();
  std::string Line = "{\"kind\": \"audit_summary\", \"thermal_steps\": " +
                     std::to_string(Summary.ThermalSteps) +
                     ", \"flow_solves\": " +
                     std::to_string(Summary.FlowSolves) +
                     ", \"energy_max_fraction\": ";
  appendJsonNumber(Line, Summary.Energy.MaxFraction);
  Line += ", \"continuity_max_fraction\": ";
  appendJsonNumber(Line, Summary.Continuity.MaxFraction);
  Line += ", \"pressure_max_fraction\": ";
  appendJsonNumber(Line, Summary.PressureClosure.MaxFraction);
  Line += ", \"coupling_max_fraction\": ";
  appendJsonNumber(Line, Summary.Coupling.MaxFraction);
  Line += ", \"within_budget\": ";
  Line += Summary.withinBudgets(Budgets) ? "true" : "false";
  Line += "}";
  Out->line(Line);
  bool Failed = Out->WriteFailed;
  std::string Path = Out->Path;
  Out.reset();
  if (Failed)
    return Status::error("write error on audit stream '" + Path + "'");
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

std::string formatClosureTable(const AuditSummary &Summary,
                               const DriftBudgets &Budgets) {
  std::string Table;
  char Row[160];
  std::snprintf(Row, sizeof(Row), "%-24s %8s %12s %12s %10s %10s %s\n",
                "invariant", "samples", "max abs", "max frac", "warn",
                "critical", "verdict");
  Table += Row;
  for (const InvariantRow &Inv : invariantRows(Summary, Budgets)) {
    std::snprintf(Row, sizeof(Row),
                  "%-24s %8llu %10.3e %s %12.3e %10.1e %10.1e %s\n",
                  Inv.Name,
                  static_cast<unsigned long long>(Inv.Stats->Samples),
                  Inv.Stats->MaxAbs, Inv.Unit, Inv.Stats->MaxFraction,
                  Inv.WarnFraction, Inv.CriticalFraction,
                  verdictFor(*Inv.Stats, Inv.WarnFraction,
                             Inv.CriticalFraction));
    Table += Row;
  }
  const char *NewtonVerdict =
      Summary.UnconvergedSolves > 0 ||
              Summary.MaxNewtonIterations > Budgets.NewtonIterationsCritical
          ? "FAIL"
          : (Summary.MaxNewtonIterations > Budgets.NewtonIterationsWarn
                 ? "WARN"
                 : "PASS");
  std::snprintf(Row, sizeof(Row),
                "%-24s %8llu max %d iter, %llu non-monotone, %llu "
                "unconverged, factor caching %s, sparse %s  %s\n",
                "newton_health",
                static_cast<unsigned long long>(Summary.FlowSolves),
                Summary.MaxNewtonIterations,
                static_cast<unsigned long long>(Summary.NonMonotoneResiduals),
                static_cast<unsigned long long>(Summary.UnconvergedSolves),
                Summary.FactorCachingEnabled ? "on" : "off",
                Summary.SparseSolverEnabled ? "on" : "off", NewtonVerdict);
  Table += Row;
  return Table;
}

Status writeAuditReport(const std::string &Path, const std::string &Command,
                        const AuditSummary &Summary,
                        const DriftBudgets &Budgets) {
  std::string Doc = "{\n  \"schema\": \"skatsim-audit-v1\",\n  \"command\": \"" +
                    Command + "\",\n  \"within_budget\": ";
  Doc += Summary.withinBudgets(Budgets) ? "true" : "false";
  Doc += ",\n  \"invariants\": [\n";
  bool First = true;
  for (const InvariantRow &Inv : invariantRows(Summary, Budgets)) {
    if (!First)
      Doc += ",\n";
    First = false;
    Doc += "    {\"name\": \"";
    Doc += Inv.Name;
    Doc += "\", \"unit\": \"";
    Doc += Inv.Unit;
    Doc += "\", \"samples\": " + std::to_string(Inv.Stats->Samples) +
           ", \"max_abs\": ";
    appendJsonNumber(Doc, Inv.Stats->MaxAbs);
    Doc += ", \"mean_abs\": ";
    appendJsonNumber(Doc, Inv.Stats->meanAbs());
    Doc += ", \"max_fraction\": ";
    appendJsonNumber(Doc, Inv.Stats->MaxFraction);
    Doc += ", \"warn_fraction\": ";
    appendJsonNumber(Doc, Inv.WarnFraction);
    Doc += ", \"critical_fraction\": ";
    appendJsonNumber(Doc, Inv.CriticalFraction);
    Doc += ", \"violations\": " + std::to_string(Inv.Stats->Violations) +
           ", \"within_budget\": ";
    Doc += Inv.Stats->MaxFraction <= Inv.CriticalFraction ? "true" : "false";
    Doc += "}";
  }
  Doc += "\n  ],\n  \"convergence\": {\"thermal_steps\": " +
         std::to_string(Summary.ThermalSteps) +
         ", \"flow_solves\": " + std::to_string(Summary.FlowSolves) +
         ", \"max_newton_iterations\": " +
         std::to_string(Summary.MaxNewtonIterations) +
         ", \"non_monotone_residuals\": " +
         std::to_string(Summary.NonMonotoneResiduals) +
         ", \"unconverged_solves\": " +
         std::to_string(Summary.UnconvergedSolves) +
         ", \"factor_caching\": ";
  Doc += Summary.FactorCachingEnabled ? "true" : "false";
  Doc += ", \"sparse_solver\": ";
  Doc += Summary.SparseSolverEnabled ? "true" : "false";
  Doc += "}\n}\n";

  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return Status::error("cannot open audit report '" + Path + "'");
  bool Failed = std::fputs(Doc.c_str(), File) < 0;
  Failed |= std::fclose(File) != 0;
  if (Failed)
    return Status::error("write error on audit report '" + Path + "'");
  return Status::ok();
}

} // namespace audit
} // namespace rcs
