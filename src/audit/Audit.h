//===- audit/Audit.h - Physics & solver invariant auditing ------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime invariant monitoring for the solvers: every transient step and
/// hydraulic solve can be checked against the conservation laws the model
/// is built on, with the drift budgeted instead of assumed.
///
/// Three invariant families are audited (docs/AUDIT.md):
///  - energy balance: per-control-volume and global closure of each
///    implicit-Euler thermal step (stored + transported + sourced vs.
///    boundary flux), in watts and as a fraction of throughput;
///  - flow continuity: junction mass balance recomputed from the edge
///    flows of a FlowSolution, plus per-edge pressure-drop closure
///    against the solved nodal pressures;
///  - convergence health: Newton iteration counts, residual-trajectory
///    monotonicity and final-residual tolerance, and thermal factor-cache
///    configuration.
///
/// A PhysicsAuditor accumulates deterministic per-instance statistics
/// (safe to fold into bit-identical sweep reports), bumps `audit.*`
/// metrics in a telemetry registry, streams self-identifying
/// `.audit.jsonl` records, and drives a debounced monitor::Supervisor
/// alarm bank so a budget breach trips the flight recorder exactly like a
/// plant trip.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_AUDIT_AUDIT_H
#define RCS_AUDIT_AUDIT_H

#include "hydraulics/FlowNetwork.h"
#include "monitor/Supervisor.h"
#include "support/Quantity.h"
#include "support/Status.h"
#include "thermal/Network.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace rcs {
namespace audit {

/// Configurable drift budgets, typed from day one (support/Quantity.h).
/// Every budget is expressed as a dimensionless fraction of the audited
/// quantity's natural scale so one set of budgets spans module- and
/// rack-sized models; the warn level feeds the alarm bank's Warning band
/// and the critical level its Critical band.
struct DriftBudgets {
  /// Global energy-closure residual as a fraction of total throughput.
  /// Implicit-Euler steps close to linear-solver round-off (~1e-13 of
  /// throughput at 512 unknowns), so anything past 1e-9 means a solver
  /// change broke conservation.
  units::Scalar EnergyFractionWarn{1e-9};
  units::Scalar EnergyFractionCritical{1e-6};

  /// Worst per-control-volume residual, same normalization.
  units::Scalar EnergyNodeFractionWarn{1e-9};
  units::Scalar EnergyNodeFractionCritical{1e-6};

  /// Floor on the throughput normalization so idle plants do not divide
  /// by zero.
  units::Watts ThroughputFloor{1.0};

  /// Operator-splitting drift of explicitly coupled loops (the rack
  /// water-inventory update uses begin-of-step oil temperatures), as a
  /// fraction of throughput. This is genuine O(dt) physics drift, not
  /// round-off, so its budget is loose.
  units::Scalar CouplingFractionWarn{0.10};
  units::Scalar CouplingFractionCritical{0.35};

  /// Worst junction continuity error as a fraction of the solve's flow
  /// scale. The Newton tolerance is 1e-6 of the flow scale; the reference
  /// junction can accumulate the other junctions' slack.
  units::Scalar ContinuityFractionWarn{1e-4};
  units::Scalar ContinuityFractionCritical{1e-2};

  /// Worst per-edge pressure closure |dP(Q) - (P_from - P_to)| as a
  /// fraction of the solution's pressure scale.
  units::Scalar PressureFractionWarn{1e-4};
  units::Scalar PressureFractionCritical{1e-2};

  /// Newton iteration budgets (warm-started solves run in 1-2).
  int NewtonIterationsWarn = 24;
  int NewtonIterationsCritical = 48;

  /// Alarm debouncing for the audit bank.
  int DebounceSamples = 2;
  bool LatchCritical = true;
};

/// Rolling statistics of one audited invariant. MaxAbs/SumAbs are in the
/// invariant's physical unit (W, m^3/s, Pa — see the owning field);
/// fractions are normalized by the invariant's scale.
struct DriftStats {
  uint64_t Samples = 0;
  double MaxAbs = 0.0;
  double SumAbs = 0.0;
  double MaxFraction = 0.0;
  /// Samples whose fraction exceeded the warn budget.
  uint64_t Violations = 0;

  double meanAbs() const {
    return Samples ? SumAbs / static_cast<double>(Samples) : 0.0;
  }
};

/// Deterministic per-run audit totals. Plain data: copies fold into
/// faults::Sweep replicate summaries index-ordered, so reports stay
/// bit-identical at any thread count.
struct AuditSummary {
  DriftStats Energy;          ///< Global step closure, W.
  DriftStats EnergyNode;      ///< Worst per-control-volume closure, W.
  DriftStats Coupling;        ///< Operator-splitting drift, W.
  DriftStats Continuity;      ///< Junction continuity, m^3/s.
  DriftStats PressureClosure; ///< Edge pressure closure, Pa.

  uint64_t ThermalSteps = 0;
  uint64_t FlowSolves = 0;
  int MaxNewtonIterations = 0;
  uint64_t NonMonotoneResiduals = 0;
  uint64_t UnconvergedSolves = 0;
  bool FactorCachingEnabled = true;
  bool SparseSolverEnabled = true;

  /// True when every invariant stayed at or below its critical budget and
  /// every hydraulic solve converged.
  bool withinBudgets(const DriftBudgets &Budgets) const;
};

/// One step's energy-closure numbers, returned for span attributes.
struct EnergyClosure {
  double ResidualW = 0.0;     ///< Signed global closure residual.
  double MaxNodeResidualW = 0.0;
  double ThroughputW = 0.0;   ///< Source power the fractions normalize by.
  double Fraction = 0.0;      ///< |ResidualW| / max(ThroughputW, floor).
};

/// Runtime invariant monitor. One instance per simulator (or per audited
/// scope); not thread-safe, matching the simulators it rides along with.
class PhysicsAuditor {
public:
  /// \p Reg defaults to the process-wide registry; metrics land under
  /// `audit.*`. The alarm bank is created immediately (Normal until fed).
  explicit PhysicsAuditor(const DriftBudgets &Budgets,
                          telemetry::Registry *Reg = nullptr);
  ~PhysicsAuditor();
  PhysicsAuditor(const PhysicsAuditor &) = delete;
  PhysicsAuditor &operator=(const PhysicsAuditor &) = delete;

  const DriftBudgets &budgets() const { return Budgets; }
  const AuditSummary &summary() const { return Summary; }

  /// Audits one implicit-Euler step of \p Net that advanced \p Before to
  /// \p After over \p DtS. Returns the closure numbers so the caller can
  /// attach them as span attributes.
  EnergyClosure recordThermalStep(const thermal::ThermalNetwork &Net,
                                  const std::vector<double> &Before,
                                  const std::vector<double> &After,
                                  double DtS);

  /// Audits the operator-splitting drift of an explicitly coupled loop:
  /// \p DriftW is the imbalance between the flux the coupled update used
  /// and the flux the implicit steps actually transported, normalized by
  /// \p ThroughputW.
  void recordCouplingDrift(double DriftW, double ThroughputW);

  /// Audits a hydraulic solution against its network: junction continuity
  /// recomputed from edge flows, per-edge pressure closure, and Newton
  /// convergence health. \p FlowScaleM3PerS must match the solve call.
  void recordFlowSolution(const hydraulics::FlowNetwork &Net,
                          const hydraulics::FlowSolution &Sol,
                          const fluids::Fluid &F, double TempC,
                          double FlowScaleM3PerS);

  /// Records the thermal factor-cache configuration (once per run).
  void noteFactorCaching(bool Enabled) {
    Summary.FactorCachingEnabled = Enabled;
  }

  /// Records the thermal sparse-solver configuration (once per run), so
  /// reports say which linear-algebra path produced the audited residuals.
  void noteSparseSolver(bool Enabled) {
    Summary.SparseSolverEnabled = Enabled;
  }

  /// Feeds the alarm bank the latest per-invariant fractions (sensor
  /// order: energy, energy_node, coupling, continuity, pressure_closure,
  /// newton_iterations) and returns the sweep report. Call at the control
  /// cadence of the owning simulator.
  monitor::SupervisoryReport updateAlarms(double TimeS);

  /// Invoked once per alarm transition whose new level is Critical, with
  /// the sensor name and time — wire this to FlightRecorder::trigger so
  /// budget breaches dump evidence like plant trips.
  ///
  /// Threading: the callback fires synchronously on the thread calling
  /// updateAlarms(). An auditor is thread-confined to its simulator —
  /// sweep replicates each own one — so the callback needs no internal
  /// locking, but any state it shares across replicates must be atomic
  /// or `RCS_GUARDED_BY` an `rcs::Mutex` (support/ThreadSafety.h).
  void setCriticalCallback(
      std::function<void(const std::string &Sensor, double TimeS)> Callback);

  monitor::Supervisor &supervisor() { return *Bank; }
  const monitor::Supervisor &supervisor() const { return *Bank; }

  /// \name Record stream
  /// Self-identifying `.audit.jsonl` stream (schema skatsim-audit-v1;
  /// validated by tools/check_trace): one header line, one
  /// `audit_sample` line per emit call, alarm transitions as
  /// `audit_alarm` lines, and a closing `audit_summary` line.
  /// @{
  Status attachStream(const std::string &Path);
  bool streaming() const;
  void emitStreamRecord(double TimeS);
  Status finishStream();
  /// @}

private:
  struct Stream;
  void bumpViolation(DriftStats &Stats, double Fraction, double WarnFraction);

  DriftBudgets Budgets;
  telemetry::Registry *Reg;
  AuditSummary Summary;
  std::unique_ptr<monitor::Supervisor> Bank;
  std::function<void(const std::string &, double)> OnCritical;
  std::unique_ptr<Stream> Out;

  // Latest per-invariant readings fed to the alarm bank.
  double LastEnergyFraction = 0.0;
  double LastEnergyNodeFraction = 0.0;
  double LastCouplingFraction = 0.0;
  double LastContinuityFraction = 0.0;
  double LastPressureFraction = 0.0;
  double LastNewtonIterationCount = 0.0;
  double LastEnergyResidualW = 0.0;
  double LastCouplingDriftW = 0.0;
  double LastContinuityErrM3PerS = 0.0;
  double LastPressureClosurePa = 0.0;

  // Cached metric handles (registry-owned; valid for Reg's lifetime).
  telemetry::Counter *ThermalStepCount = nullptr;
  telemetry::Counter *FlowSolveCount = nullptr;
  telemetry::Counter *ViolationCount = nullptr;
  telemetry::Counter *BreachCount = nullptr;
  telemetry::Gauge *EnergyFractionGauge = nullptr;
  telemetry::Gauge *ContinuityFractionGauge = nullptr;
  telemetry::Gauge *PressureFractionGauge = nullptr;
  telemetry::Gauge *CouplingFractionGauge = nullptr;
  telemetry::Histogram *EnergyResidualHist = nullptr;
  telemetry::Histogram *ContinuityHist = nullptr;
  telemetry::Histogram *PressureClosureHist = nullptr;
  telemetry::Histogram *NewtonIterationsHist = nullptr;
};

/// Builds the audit alarm bank over \p Budgets: six debounced sensors in
/// the PhysicsAuditor::updateAlarms order, fraction sensors with 10%
/// hysteresis of their warn band, iteration sensor in whole iterations.
monitor::Supervisor makeAuditSupervisor(const DriftBudgets &Budgets,
                                        telemetry::Registry *Reg = nullptr);

/// Renders the per-invariant closure table `skatsim audit` prints:
/// one row per invariant with samples, worst absolute drift, worst
/// fraction, warn/critical budgets and a PASS/WARN/FAIL verdict.
std::string formatClosureTable(const AuditSummary &Summary,
                               const DriftBudgets &Budgets);

/// Writes `AUDIT_<command>.json` (schema skatsim-audit-v1): the summary,
/// budgets, and per-invariant verdicts as one JSON document, validated by
/// tools/check_trace.
Status writeAuditReport(const std::string &Path, const std::string &Command,
                        const AuditSummary &Summary,
                        const DriftBudgets &Budgets);

} // namespace audit
} // namespace rcs

#endif // RCS_AUDIT_AUDIT_H
