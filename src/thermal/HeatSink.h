//===- thermal/HeatSink.h - Heat sink models --------------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heat-sink geometry models that turn fluid properties and an approach
/// velocity into a base-to-fluid thermal resistance and a pressure drop.
///
/// Two families are modeled:
///  - PlateFinHeatSink: the conventional air-cooling sink used by the
///    Rigel-2 / Taygeta generations.
///  - PinFinHeatSink: the low-height immersion sink with "original solder
///    pins which create a local turbulent flow" the paper develops for the
///    SKAT module (Section 2). The turbulator enhancement factor models the
///    solder-pin surface disturbance relative to smooth machined pins.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_THERMAL_HEATSINK_H
#define RCS_THERMAL_HEATSINK_H

#include "fluids/Fluid.h"
#include "thermal/Convection.h"

#include <memory>
#include <string>

namespace rcs {
namespace thermal {

/// Bulk solid used for sink fins and base.
enum class SinkMaterial { Aluminum, Copper };

/// Thermal conductivity of \p Material in W/(m*K).
double sinkMaterialConductivityWPerMK(SinkMaterial Material);

/// Detailed result of a heat-sink convection evaluation.
struct SinkEvaluation {
  double FilmCoefficientWPerM2K = 0.0; ///< Surface film coefficient h.
  double EffectiveAreaM2 = 0.0;        ///< Fin-efficiency-weighted area.
  double ResistanceKPerW = 0.0;        ///< Base-to-fluid total resistance.
  double ReynoldsNumber = 0.0;         ///< At the characteristic length.
  FlowRegime Regime = FlowRegime::Laminar;
  double PressureDropPa = 0.0;         ///< Across the sink at this flow.
};

/// Abstract heat sink: geometry + material, evaluated against a fluid.
class HeatSink {
public:
  virtual ~HeatSink();

  const std::string &name() const { return Name; }

  /// Evaluates film coefficient, resistance and pressure drop.
  ///
  /// \p BulkTempC is the coolant bulk temperature, \p ApproachVelocityMPerS
  /// the velocity upstream of the sink, \p SurfaceTempC an estimate of the
  /// sink surface temperature (used for property-variation corrections;
  /// pass the bulk temperature when unknown).
  virtual SinkEvaluation evaluate(const fluids::Fluid &F, double BulkTempC,
                                  double ApproachVelocityMPerS,
                                  double SurfaceTempC) const = 0;

  /// Convenience: just the base-to-fluid resistance in K/W.
  double thermalResistanceKPerW(const fluids::Fluid &F, double BulkTempC,
                                double ApproachVelocityMPerS,
                                double SurfaceTempC) const {
    return evaluate(F, BulkTempC, ApproachVelocityMPerS, SurfaceTempC)
        .ResistanceKPerW;
  }

  /// Footprint (base) area in m^2.
  virtual double footprintAreaM2() const = 0;

  /// Overall height above the package in m.
  virtual double heightM() const = 0;

protected:
  explicit HeatSink(std::string Name) : Name(std::move(Name)) {}

private:
  std::string Name;
};

/// Geometry of a parallel-plate-fin sink with flow along the channels.
struct PlateFinGeometry {
  double BaseLengthM = 0.06;    ///< Along the flow.
  double BaseWidthM = 0.05;     ///< Across the flow.
  double BaseThicknessM = 0.005;
  /// Footprint of the package lid feeding the base (lidded flip-chip
  /// packages spread die heat into a ~37 mm copper lid before the sink);
  /// sets the spreading resistance.
  double HeatSourceAreaM2 = 1.4e-3;
  double FinHeightM = 0.03;
  double FinThicknessM = 0.0008;
  int FinCount = 20;
  SinkMaterial Material = SinkMaterial::Aluminum;
};

/// A conventional straight-fin sink (air-cooling generations).
class PlateFinHeatSink : public HeatSink {
public:
  PlateFinHeatSink(std::string Name, PlateFinGeometry Geometry);

  SinkEvaluation evaluate(const fluids::Fluid &F, double BulkTempC,
                          double ApproachVelocityMPerS,
                          double SurfaceTempC) const override;
  double footprintAreaM2() const override;
  double heightM() const override;

  const PlateFinGeometry &geometry() const { return Geom; }

private:
  PlateFinGeometry Geom;
};

/// Geometry of a staggered pin-fin sink with crossflow through the bank.
struct PinFinGeometry {
  double BaseLengthM = 0.05;     ///< Along the flow.
  double BaseWidthM = 0.05;      ///< Across the flow.
  double BaseThicknessM = 0.004;
  /// Footprint of the package lid feeding the base (lidded flip-chip
  /// packages spread die heat into a ~37 mm copper lid before the sink);
  /// sets the spreading resistance.
  double HeatSourceAreaM2 = 1.4e-3;
  double PinDiameterM = 0.0015;
  double PinHeightM = 0.012;     ///< Low height per the paper's design.
  double PitchM = 0.004;         ///< Center-to-center, square layout.
  SinkMaterial Material = SinkMaterial::Copper;
  /// Convection enhancement of the rough solder pins over smooth machined
  /// pins (the paper's "original solder pins" create local turbulence).
  double TurbulatorFactor = 1.25;
};

/// The paper's low-height immersion sink with solder-pin turbulators.
class PinFinHeatSink : public HeatSink {
public:
  PinFinHeatSink(std::string Name, PinFinGeometry Geometry);

  SinkEvaluation evaluate(const fluids::Fluid &F, double BulkTempC,
                          double ApproachVelocityMPerS,
                          double SurfaceTempC) const override;
  double footprintAreaM2() const override;
  double heightM() const override;

  const PinFinGeometry &geometry() const { return Geom; }

  /// Number of pins in the bank.
  int pinCount() const;

  /// Rows of pins encountered along the flow direction.
  int rowsDeep() const;

private:
  PinFinGeometry Geom;
};

} // namespace thermal
} // namespace rcs

#endif // RCS_THERMAL_HEATSINK_H
