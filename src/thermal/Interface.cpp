//===- thermal/Interface.cpp - Thermal interface materials ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "thermal/Interface.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::thermal;

ThermalInterface::ThermalInterface(std::string NameIn,
                                   double ConductivityWPerMKIn,
                                   double ThicknessMIn, double AreaM2In,
                                   double WashoutRatePerKhIn)
    : Name(std::move(NameIn)), ConductivityWPerMK(ConductivityWPerMKIn),
      ThicknessM(ThicknessMIn), AreaM2(AreaM2In),
      WashoutRatePerKh(WashoutRatePerKhIn) {
  assert(ConductivityWPerMK > 0 && ThicknessM > 0 && AreaM2 > 0 &&
         "invalid TIM parameters");
  assert(WashoutRatePerKh >= 0 && WashoutRatePerKh < 1.0 &&
         "wash-out rate must be a fraction per kilohour");
}

double ThermalInterface::resistanceKPerW(double ExposureHours) const {
  assert(ExposureHours >= 0 && "negative exposure");
  // Exponential conductivity decay: k(t) = k0 * exp(-rate * kh), floored.
  double Kh = ExposureHours / 1000.0;
  double Remaining = std::exp(-WashoutRatePerKh * Kh);
  double K = ConductivityWPerMK * std::max(Remaining, 0.05);
  double Bulk = ThicknessM / (K * AreaM2);
  // Contact resistance allowance on both faces, ~5e-6 K*m^2/W each.
  double Contact = 2.0 * 5e-6 / AreaM2;
  return Bulk + Contact;
}

bool ThermalInterface::isDegraded(double ExposureHours) const {
  double Kh = ExposureHours / 1000.0;
  return std::exp(-WashoutRatePerKh * Kh) < 0.5;
}

ThermalInterface ThermalInterface::makeSiliconeGrease(double AreaM2) {
  // k = 4 W/mK, 80 um bond line; loses ~15%/kh of conductivity in
  // circulating oil (washes out over months of service).
  return ThermalInterface("silicone grease", 4.0, 80e-6, AreaM2, 0.15);
}

ThermalInterface ThermalInterface::makeSkatInterface(double AreaM2) {
  // The authors' interface: comparable conductivity, oil-insoluble binder,
  // improved coating/removal technology; no wash-out.
  return ThermalInterface("SKAT wash-out-proof interface", 4.5, 70e-6,
                          AreaM2, 0.0);
}

ThermalInterface ThermalInterface::makeGraphitePad(double AreaM2) {
  // Through-plane conductivity ~8 W/mK but a thicker, compliant pad.
  return ThermalInterface("graphite pad", 8.0, 200e-6, AreaM2, 0.0);
}
