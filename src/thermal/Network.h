//===- thermal/Network.h - Thermal RC network solver ------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lumped thermal resistance/capacitance network.
///
/// Nodes carry temperatures (Celsius); edges carry conductances (W/K);
/// nodes can have heat sources (W) and capacitances (J/K). Boundary nodes
/// hold fixed temperatures (ambient air, chilled water). The network itself
/// is linear: temperature-dependent conductances (convection films) are
/// re-evaluated by the caller between solves, which is how the coupled
/// engine in src/sim handles the nonlinearity.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_THERMAL_NETWORK_H
#define RCS_THERMAL_NETWORK_H

#include "support/Numerics.h"
#include "support/Quantity.h"
#include "support/SparseMatrix.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace rcs {
namespace thermal {

/// Index of a node inside a ThermalNetwork.
using NodeId = size_t;

/// A lumped-parameter thermal network with steady-state and transient
/// solvers.
class ThermalNetwork {
public:
  /// Adds an internal (unknown-temperature) node.
  ///
  /// \p CapacitanceJPerK may be zero for massless junction nodes in
  /// steady-state-only networks; transient stepping requires a positive
  /// capacitance on every internal node.
  NodeId addNode(std::string Name, double CapacitanceJPerK = 0.0);

  /// Adds a fixed-temperature boundary node (ambient, chilled water, ...).
  NodeId addBoundaryNode(std::string Name, double TempC);

  /// Adds a thermal conductance of \p GWPerK between two nodes.
  /// Parallel conductances accumulate.
  void addConductance(NodeId A, NodeId B, double GWPerK);

  /// Adds a thermal resistance of \p RKPerW between two nodes.
  void addResistance(NodeId A, NodeId B, double RKPerW);

  /// Adds \p PowerW of heat injection at \p Node (accumulates).
  void addHeatSource(NodeId Node, double PowerW);

  /// Replaces the heat source at \p Node with \p PowerW.
  void setHeatSource(NodeId Node, double PowerW);

  /// Updates the fixed temperature of boundary node \p Node.
  void setBoundaryTemp(NodeId Node, double TempC);

  /// Replaces the accumulated conductance between \p A and \p B.
  ///
  /// Requires that a conductance between the two nodes already exists.
  void setConductance(NodeId A, NodeId B, double GWPerK);

  /// Replaces the thermal capacitance of internal node \p Node.
  ///
  /// Lets transient simulators model inventory changes (coolant loss,
  /// drained loops) without rebuilding the network each step.
  void setCapacitance(NodeId Node, double CapacitanceJPerK);

  /// Enables or disables factorization caching (on by default).
  ///
  /// With caching off, every solve rebuilds and refactors the dense
  /// system — the seed behavior, kept for benchmark ablations. Results
  /// are bit-identical either way; only the work done differs.
  void setFactorCaching(bool Enabled);

  /// True when factorization caching is enabled.
  bool factorCachingEnabled() const { return CachingEnabled; }

  /// Enables or disables the sparse solve path (on by default).
  ///
  /// With the sparse solver on, networks at or above the threshold (see
  /// setSparseThreshold) assemble directly into CSR and solve through a
  /// split-phase LDL^T (support/SparseMatrix.h); smaller networks — and
  /// everything when this is off — stay on the bit-exact dense
  /// `LuFactorization` path. The two paths agree to linear-solver
  /// round-off, not bitwise (tests/solver_equivalence_test.cpp pins the
  /// tolerance); disabling is the benchmark ablation leg, mirroring
  /// setFactorCaching.
  void setSparseSolver(bool Enabled);

  /// True when the sparse solve path is enabled.
  bool sparseSolverEnabled() const { return SparseEnabled; }

  /// Unknown count at which solves switch to the sparse path.
  ///
  /// Below \p MinUnknowns the dense factor wins on constant factors; the
  /// default (128) is where the CSR path starts paying for itself on the
  /// ladder benchmarks (docs/PERFORMANCE.md).
  void setSparseThreshold(size_t MinUnknowns);

  /// The sparse-path switch-over threshold in unknowns.
  size_t sparseThresholdUnknowns() const { return SparseThresholdUnknowns; }

  /// Default sparse switch-over threshold in unknowns.
  static constexpr size_t DefaultSparseThresholdUnknowns = 128;

  /// Approximate heap bytes held by the cached solver factors: a dense LU
  /// holds N*N coefficients; the sparse factors report their index and
  /// value arrays. Feeds the peak-matrix-bytes metric in bench_p1_solvers.
  size_t solverMemoryBytes() const;

  /// \name Dimension-checked builders
  /// Typed mirrors of the setters above (see support/Quantity.h). A
  /// conductance cannot be passed where a capacitance or power belongs,
  /// and boundary temperatures are Celsius points, not bare numbers.
  /// @{
  NodeId addNode(std::string Name, units::JoulesPerKelvin Capacitance) {
    return addNode(std::move(Name), Capacitance.value());
  }
  NodeId addBoundaryNode(std::string Name, units::Celsius Temp) {
    return addBoundaryNode(std::move(Name), Temp.value());
  }
  void addConductance(NodeId A, NodeId B, units::WattsPerKelvin G) {
    addConductance(A, B, G.value());
  }
  void addResistance(NodeId A, NodeId B, units::KelvinPerWatt R) {
    addResistance(A, B, R.value());
  }
  void addHeatSource(NodeId Node, units::Watts Power) {
    addHeatSource(Node, Power.value());
  }
  void setHeatSource(NodeId Node, units::Watts Power) {
    setHeatSource(Node, Power.value());
  }
  void setBoundaryTemp(NodeId Node, units::Celsius Temp) {
    setBoundaryTemp(Node, Temp.value());
  }
  void setConductance(NodeId A, NodeId B, units::WattsPerKelvin G) {
    setConductance(A, B, G.value());
  }
  void setCapacitance(NodeId Node, units::JoulesPerKelvin Capacitance) {
    setCapacitance(Node, Capacitance.value());
  }
  /// @}

  size_t numNodes() const { return Nodes.size(); }
  const std::string &nodeName(NodeId Node) const;
  bool isBoundary(NodeId Node) const;
  double heatSourceW(NodeId Node) const;
  double capacitanceJPerK(NodeId Node) const;

  /// Total heat injected by sources, W.
  double totalSourcePowerW() const;

  /// Solves for steady-state temperatures of every node.
  ///
  /// \returns one temperature per node (boundary nodes return their fixed
  /// temperature), or an error when internal nodes are thermally
  /// disconnected from every boundary.
  Expected<std::vector<double>> solveSteadyState() const;

  /// Advances a transient state one implicit-Euler step of \p DtS seconds.
  ///
  /// \p Temps must hold one temperature per node and is updated in place;
  /// boundary entries are reset to the boundary temperature. All internal
  /// nodes need positive capacitance.
  Status stepTransient(std::vector<double> &Temps, double DtS) const;

  /// Net heat flow in W from the network into boundary node \p Node under
  /// the temperatures \p Temps (positive = heat absorbed by the boundary).
  double boundaryHeatFlowW(NodeId Node,
                           const std::vector<double> &Temps) const;

  /// Sum of residuals |sum_j G_ij (T_j - T_i) + Q_i| over internal nodes;
  /// near zero for a converged steady state (energy conservation check).
  double steadyStateResidualW(const std::vector<double> &Temps) const;

  /// Per-node implicit-Euler energy-balance residuals of the step that
  /// advanced \p Before to \p After over \p DtS seconds:
  ///   R_i = C_i (After_i - Before_i) / DtS - Q_i - sum_j G_ij (After_j -
  ///   After_i)
  /// for internal nodes; boundary entries are zero. A converged implicit
  /// step closes each control volume to linear-solver round-off, so the
  /// audit layer (src/audit) can budget the drift at machine-epsilon
  /// scale. Both states must hold one temperature per node.
  std::vector<double> transientResidualsW(const std::vector<double> &Before,
                                          const std::vector<double> &After,
                                          double DtS) const;

private:
  struct Node {
    std::string Name;
    bool Boundary = false;
    double TempC = 0.0;          // Fixed temperature for boundary nodes.
    double CapacitanceJPerK = 0; // Internal nodes only.
    double SourceW = 0.0;
  };
  struct Edge {
    NodeId A;
    NodeId B;
    double GWPerK;
  };

  std::vector<Node> Nodes;
  std::vector<Edge> Edges;

  /// Split-phase solver cache (docs/PERFORMANCE.md). The symbolic phase
  /// (unknown indexing) is invalidated by node insertion; the numeric
  /// phase (LU factors) by conductance mutation — plus capacitance
  /// mutation and time-step changes for the transient factor. Heat-source
  /// and boundary-temperature updates only touch the right-hand side and
  /// keep both factors valid. Mutable because solves are logically const
  /// but warm the cache: a network must not be solved from multiple
  /// threads concurrently (sweeps already hold one network per
  /// replicate).
  struct SolverCache {
    std::vector<size_t> UnknownIndex;
    size_t NumUnknowns = 0;
    bool SymbolicValid = false;
    LuFactorization SteadyFactor;
    bool SteadyValid = false;
    LuFactorization TransientFactor;
    bool TransientValid = false;
    double TransientDtS = -1.0; // Time step the transient factor was built for.

    // Sparse path. The steady and transient systems share one sparsity
    // pattern (the structural diagonal is always assembled, value zero if
    // need be), so each SparseLdlt's symbolic products survive every
    // mutation short of topology changes: RHS setters touch nothing,
    // conductance/capacitance/dt edits drop only the numeric flags below,
    // node or edge insertion clears PatternValid and forces both objects
    // through a fresh analyze().
    bool SparsePatternValid = false;
    SparseLdlt SparseSteady;
    bool SparseSteadyValid = false;
    SparseLdlt SparseTransient;
    bool SparseTransientValid = false;
    double SparseTransientDtS = -1.0;
  };
  mutable SolverCache Cache;
  bool CachingEnabled = true;
  bool SparseEnabled = true;
  size_t SparseThresholdUnknowns = DefaultSparseThresholdUnknowns;

  void invalidateSymbolic() {
    Cache.SymbolicValid = false;
    invalidateSparsePattern();
    invalidateNumeric();
  }
  void invalidateNumeric() {
    Cache.SteadyValid = false;
    Cache.TransientValid = false;
    Cache.SparseSteadyValid = false;
    Cache.SparseTransientValid = false;
  }
  void invalidateSparsePattern() {
    Cache.SparsePatternValid = false;
    Cache.SparseSteadyValid = false;
    Cache.SparseTransientValid = false;
  }
  /// True when this solve should route through the sparse path.
  bool useSparsePath() const {
    return CachingEnabled && SparseEnabled &&
           Cache.NumUnknowns >= SparseThresholdUnknowns;
  }
  /// Rebuilds the unknown indexing when stale.
  void ensureSymbolic() const;
  /// Drops stale sparse symbolic products after a topology change.
  void ensureSparsePattern() const;
  /// Assembles the reduced steady-state matrix (Laplacian over unknowns).
  Matrix assembleSteadyMatrix() const;
  /// Assembles the implicit-Euler matrix C/dt + L for \p DtS.
  Matrix assembleTransientMatrix(double DtS) const;
  /// CSR twins of the assemblers above. DtS < 0 selects the steady system
  /// (structural zero diagonal); both emit the same coordinate list so
  /// the two factors share one symbolic analysis.
  SparseCsr assembleSparse(double DtS) const;
};

} // namespace thermal
} // namespace rcs

#endif // RCS_THERMAL_NETWORK_H
