//===- thermal/Network.cpp - Thermal RC network solver ---------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "thermal/Network.h"

#include "support/Numerics.h"
#include "telemetry/Telemetry.h"

#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::thermal;

NodeId ThermalNetwork::addNode(std::string Name, double CapacitanceJPerK) {
  assert(CapacitanceJPerK >= 0 && "negative thermal capacitance");
  Node N;
  N.Name = std::move(Name);
  N.CapacitanceJPerK = CapacitanceJPerK;
  Nodes.push_back(std::move(N));
  return Nodes.size() - 1;
}

NodeId ThermalNetwork::addBoundaryNode(std::string Name, double TempC) {
  Node N;
  N.Name = std::move(Name);
  N.Boundary = true;
  N.TempC = TempC;
  Nodes.push_back(std::move(N));
  return Nodes.size() - 1;
}

void ThermalNetwork::addConductance(NodeId A, NodeId B, double GWPerK) {
  assert(A < Nodes.size() && B < Nodes.size() && "node id out of range");
  assert(A != B && "self-conductance is meaningless");
  assert(GWPerK > 0 && "conductance must be positive");
  // Accumulate into an existing edge when present to keep the edge list
  // compact for repeatedly-built film coefficients.
  for (Edge &E : Edges) {
    if ((E.A == A && E.B == B) || (E.A == B && E.B == A)) {
      E.GWPerK += GWPerK;
      return;
    }
  }
  Edges.push_back({A, B, GWPerK});
}

void ThermalNetwork::addResistance(NodeId A, NodeId B, double RKPerW) {
  assert(RKPerW > 0 && "resistance must be positive");
  addConductance(A, B, 1.0 / RKPerW);
}

void ThermalNetwork::addHeatSource(NodeId Node, double PowerW) {
  assert(Node < Nodes.size() && "node id out of range");
  Nodes[Node].SourceW += PowerW;
}

void ThermalNetwork::setHeatSource(NodeId Node, double PowerW) {
  assert(Node < Nodes.size() && "node id out of range");
  Nodes[Node].SourceW = PowerW;
}

void ThermalNetwork::setBoundaryTemp(NodeId Node, double TempC) {
  assert(Node < Nodes.size() && Nodes[Node].Boundary &&
         "setBoundaryTemp on a non-boundary node");
  Nodes[Node].TempC = TempC;
}

void ThermalNetwork::setConductance(NodeId A, NodeId B, double GWPerK) {
  assert(GWPerK > 0 && "conductance must be positive");
  for (Edge &E : Edges) {
    if ((E.A == A && E.B == B) || (E.A == B && E.B == A)) {
      E.GWPerK = GWPerK;
      return;
    }
  }
  assert(false && "setConductance on a missing edge");
}

const std::string &ThermalNetwork::nodeName(NodeId Node) const {
  assert(Node < Nodes.size() && "node id out of range");
  return Nodes[Node].Name;
}

bool ThermalNetwork::isBoundary(NodeId Node) const {
  assert(Node < Nodes.size() && "node id out of range");
  return Nodes[Node].Boundary;
}

double ThermalNetwork::heatSourceW(NodeId Node) const {
  assert(Node < Nodes.size() && "node id out of range");
  return Nodes[Node].SourceW;
}

double ThermalNetwork::capacitanceJPerK(NodeId Node) const {
  assert(Node < Nodes.size() && "node id out of range");
  return Nodes[Node].CapacitanceJPerK;
}

double ThermalNetwork::totalSourcePowerW() const {
  double Sum = 0.0;
  for (const Node &N : Nodes)
    Sum += N.SourceW;
  return Sum;
}

Expected<std::vector<double>> ThermalNetwork::solveSteadyState() const {
  static telemetry::Counter &SolveCount =
      telemetry::Registry::global().counter("thermal.network.steady_solves");
  telemetry::ScopedTimer Timer("thermal.network.steady_solve");
  SolveCount.add();
  // Index internal nodes into the reduced unknown vector.
  std::vector<size_t> UnknownIndex(Nodes.size(), SIZE_MAX);
  size_t NumUnknowns = 0;
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (!Nodes[I].Boundary)
      UnknownIndex[I] = NumUnknowns++;

  std::vector<double> Temps(Nodes.size(), 0.0);
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (Nodes[I].Boundary)
      Temps[I] = Nodes[I].TempC;
  if (NumUnknowns == 0)
    return Temps;

  Matrix A(NumUnknowns, NumUnknowns);
  std::vector<double> B(NumUnknowns, 0.0);
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (!Nodes[I].Boundary)
      B[UnknownIndex[I]] = Nodes[I].SourceW;

  for (const Edge &Ed : Edges) {
    bool ABound = Nodes[Ed.A].Boundary;
    bool BBound = Nodes[Ed.B].Boundary;
    if (ABound && BBound)
      continue;
    if (!ABound) {
      size_t IA = UnknownIndex[Ed.A];
      A.at(IA, IA) += Ed.GWPerK;
      if (BBound)
        B[IA] += Ed.GWPerK * Nodes[Ed.B].TempC;
      else
        A.at(IA, UnknownIndex[Ed.B]) -= Ed.GWPerK;
    }
    if (!BBound) {
      size_t IB = UnknownIndex[Ed.B];
      A.at(IB, IB) += Ed.GWPerK;
      if (ABound)
        B[IB] += Ed.GWPerK * Nodes[Ed.A].TempC;
      else
        A.at(IB, UnknownIndex[Ed.A]) -= Ed.GWPerK;
    }
  }

  Expected<std::vector<double>> Reduced = solveDense(std::move(A),
                                                     std::move(B));
  if (!Reduced) {
    telemetry::Registry::global()
        .counter("thermal.network.solve_failures")
        .add();
    return Expected<std::vector<double>>::error(
        "thermal network is singular: an internal node has no path to any "
        "boundary (" + Reduced.message() + ")");
  }

  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (!Nodes[I].Boundary)
      Temps[I] = (*Reduced)[UnknownIndex[I]];
  return Temps;
}

Status ThermalNetwork::stepTransient(std::vector<double> &Temps,
                                     double DtS) const {
  assert(Temps.size() == Nodes.size() && "state size mismatch");
  assert(DtS > 0 && "time step must be positive");
  // stepTransient sits in every simulator's inner loop: one relaxed
  // atomic add, nothing else.
  static telemetry::Counter &StepCount =
      telemetry::Registry::global().counter("thermal.network.transient_steps");
  StepCount.add();

  std::vector<size_t> UnknownIndex(Nodes.size(), SIZE_MAX);
  size_t NumUnknowns = 0;
  for (size_t I = 0, E = Nodes.size(); I != E; ++I) {
    if (Nodes[I].Boundary)
      continue;
    if (Nodes[I].CapacitanceJPerK <= 0.0)
      return Status::error("transient step requires positive capacitance on "
                           "internal node '" + Nodes[I].Name + "'");
    UnknownIndex[I] = NumUnknowns++;
  }
  if (NumUnknowns == 0) {
    for (size_t I = 0, E = Nodes.size(); I != E; ++I)
      if (Nodes[I].Boundary)
        Temps[I] = Nodes[I].TempC;
    return Status::ok();
  }

  // Implicit Euler: (C/dt + L) T^{n+1} = (C/dt) T^n + Q + G*T_boundary.
  Matrix A(NumUnknowns, NumUnknowns);
  std::vector<double> B(NumUnknowns, 0.0);
  for (size_t I = 0, E = Nodes.size(); I != E; ++I) {
    if (Nodes[I].Boundary)
      continue;
    size_t U = UnknownIndex[I];
    double CoverDt = Nodes[I].CapacitanceJPerK / DtS;
    A.at(U, U) += CoverDt;
    B[U] += CoverDt * Temps[I] + Nodes[I].SourceW;
  }
  for (const Edge &Ed : Edges) {
    bool ABound = Nodes[Ed.A].Boundary;
    bool BBound = Nodes[Ed.B].Boundary;
    if (ABound && BBound)
      continue;
    if (!ABound) {
      size_t IA = UnknownIndex[Ed.A];
      A.at(IA, IA) += Ed.GWPerK;
      if (BBound)
        B[IA] += Ed.GWPerK * Nodes[Ed.B].TempC;
      else
        A.at(IA, UnknownIndex[Ed.B]) -= Ed.GWPerK;
    }
    if (!BBound) {
      size_t IB = UnknownIndex[Ed.B];
      A.at(IB, IB) += Ed.GWPerK;
      if (ABound)
        B[IB] += Ed.GWPerK * Nodes[Ed.A].TempC;
      else
        A.at(IB, UnknownIndex[Ed.A]) -= Ed.GWPerK;
    }
  }

  Expected<std::vector<double>> Next = solveDense(std::move(A), std::move(B));
  if (!Next)
    return Status::error("transient thermal step failed: " + Next.message());

  for (size_t I = 0, E = Nodes.size(); I != E; ++I) {
    if (Nodes[I].Boundary)
      Temps[I] = Nodes[I].TempC;
    else
      Temps[I] = (*Next)[UnknownIndex[I]];
  }
  return Status::ok();
}

double
ThermalNetwork::boundaryHeatFlowW(NodeId Node,
                                  const std::vector<double> &Temps) const {
  assert(Node < Nodes.size() && Nodes[Node].Boundary &&
         "boundaryHeatFlowW on a non-boundary node");
  assert(Temps.size() == Nodes.size() && "state size mismatch");
  double Flow = 0.0;
  for (const Edge &Ed : Edges) {
    if (Ed.A == Node)
      Flow += Ed.GWPerK * (Temps[Ed.B] - Temps[Node]);
    else if (Ed.B == Node)
      Flow += Ed.GWPerK * (Temps[Ed.A] - Temps[Node]);
  }
  return Flow;
}

double ThermalNetwork::steadyStateResidualW(
    const std::vector<double> &Temps) const {
  assert(Temps.size() == Nodes.size() && "state size mismatch");
  std::vector<double> Residual(Nodes.size(), 0.0);
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    Residual[I] = Nodes[I].SourceW;
  for (const Edge &Ed : Edges) {
    double Flow = Ed.GWPerK * (Temps[Ed.B] - Temps[Ed.A]);
    Residual[Ed.A] += Flow;
    Residual[Ed.B] -= Flow;
  }
  double Sum = 0.0;
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (!Nodes[I].Boundary)
      Sum += std::fabs(Residual[I]);
  return Sum;
}
