//===- thermal/Network.cpp - Thermal RC network solver ---------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "thermal/Network.h"

#include "support/Numerics.h"
#include "telemetry/Span.h"
#include "telemetry/Telemetry.h"

#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::thermal;

NodeId ThermalNetwork::addNode(std::string Name, double CapacitanceJPerK) {
  assert(CapacitanceJPerK >= 0 && "negative thermal capacitance");
  Node N;
  N.Name = std::move(Name);
  N.CapacitanceJPerK = CapacitanceJPerK;
  Nodes.push_back(std::move(N));
  invalidateSymbolic();
  return Nodes.size() - 1;
}

NodeId ThermalNetwork::addBoundaryNode(std::string Name, double TempC) {
  Node N;
  N.Name = std::move(Name);
  N.Boundary = true;
  N.TempC = TempC;
  Nodes.push_back(std::move(N));
  invalidateSymbolic();
  return Nodes.size() - 1;
}

void ThermalNetwork::addConductance(NodeId A, NodeId B, double GWPerK) {
  assert(A < Nodes.size() && B < Nodes.size() && "node id out of range");
  assert(A != B && "self-conductance is meaningless");
  assert(GWPerK > 0 && "conductance must be positive");
  invalidateNumeric();
  // Accumulate into an existing edge when present to keep the edge list
  // compact for repeatedly-built film coefficients. Accumulation keeps
  // the sparsity pattern; only a genuinely new edge dirties the sparse
  // symbolic analysis.
  for (Edge &E : Edges) {
    if ((E.A == A && E.B == B) || (E.A == B && E.B == A)) {
      E.GWPerK += GWPerK;
      return;
    }
  }
  invalidateSparsePattern();
  Edges.push_back({A, B, GWPerK});
}

void ThermalNetwork::addResistance(NodeId A, NodeId B, double RKPerW) {
  assert(RKPerW > 0 && "resistance must be positive");
  addConductance(A, B, 1.0 / RKPerW);
}

void ThermalNetwork::addHeatSource(NodeId Node, double PowerW) {
  assert(Node < Nodes.size() && "node id out of range");
  Nodes[Node].SourceW += PowerW;
}

void ThermalNetwork::setHeatSource(NodeId Node, double PowerW) {
  assert(Node < Nodes.size() && "node id out of range");
  Nodes[Node].SourceW = PowerW;
}

void ThermalNetwork::setBoundaryTemp(NodeId Node, double TempC) {
  assert(Node < Nodes.size() && Nodes[Node].Boundary &&
         "setBoundaryTemp on a non-boundary node");
  Nodes[Node].TempC = TempC;
}

void ThermalNetwork::setConductance(NodeId A, NodeId B, double GWPerK) {
  assert(GWPerK > 0 && "conductance must be positive");
  invalidateNumeric();
  for (Edge &E : Edges) {
    if ((E.A == A && E.B == B) || (E.A == B && E.B == A)) {
      E.GWPerK = GWPerK;
      return;
    }
  }
  assert(false && "setConductance on a missing edge");
}

void ThermalNetwork::setCapacitance(NodeId Node, double CapacitanceJPerK) {
  assert(Node < Nodes.size() && "node id out of range");
  assert(!Nodes[Node].Boundary && "setCapacitance on a boundary node");
  assert(CapacitanceJPerK >= 0 && "negative thermal capacitance");
  Nodes[Node].CapacitanceJPerK = CapacitanceJPerK;
  // Capacitance enters only the implicit-Euler matrix; the steady-state
  // factors (dense and sparse) stay valid.
  Cache.TransientValid = false;
  Cache.SparseTransientValid = false;
}

void ThermalNetwork::setFactorCaching(bool Enabled) {
  CachingEnabled = Enabled;
  if (!Enabled) {
    Cache.SteadyFactor.reset();
    Cache.TransientFactor.reset();
    Cache.SparseSteady.reset();
    Cache.SparseTransient.reset();
    invalidateSparsePattern();
    invalidateNumeric();
  }
}

void ThermalNetwork::setSparseSolver(bool Enabled) {
  SparseEnabled = Enabled;
  if (!Enabled) {
    Cache.SparseSteady.reset();
    Cache.SparseTransient.reset();
    invalidateSparsePattern();
  }
}

void ThermalNetwork::setSparseThreshold(size_t MinUnknowns) {
  SparseThresholdUnknowns = MinUnknowns;
}

size_t ThermalNetwork::solverMemoryBytes() const {
  size_t Bytes = 0;
  if (Cache.SteadyFactor.valid())
    Bytes +=
        Cache.SteadyFactor.size() * Cache.SteadyFactor.size() * sizeof(double);
  if (Cache.TransientFactor.valid())
    Bytes += Cache.TransientFactor.size() * Cache.TransientFactor.size() *
             sizeof(double);
  Bytes += Cache.SparseSteady.memoryBytes();
  Bytes += Cache.SparseTransient.memoryBytes();
  return Bytes;
}

const std::string &ThermalNetwork::nodeName(NodeId Node) const {
  assert(Node < Nodes.size() && "node id out of range");
  return Nodes[Node].Name;
}

bool ThermalNetwork::isBoundary(NodeId Node) const {
  assert(Node < Nodes.size() && "node id out of range");
  return Nodes[Node].Boundary;
}

double ThermalNetwork::heatSourceW(NodeId Node) const {
  assert(Node < Nodes.size() && "node id out of range");
  return Nodes[Node].SourceW;
}

double ThermalNetwork::capacitanceJPerK(NodeId Node) const {
  assert(Node < Nodes.size() && "node id out of range");
  return Nodes[Node].CapacitanceJPerK;
}

double ThermalNetwork::totalSourcePowerW() const {
  double Sum = 0.0;
  for (const Node &N : Nodes)
    Sum += N.SourceW;
  return Sum;
}

void ThermalNetwork::ensureSymbolic() const {
  if (Cache.SymbolicValid)
    return;
  // Symbolic phase: index internal nodes into the reduced unknown vector.
  // Recomputed only when nodes are inserted; both numeric factors are
  // stale once the indexing changes.
  Cache.UnknownIndex.assign(Nodes.size(), SIZE_MAX);
  Cache.NumUnknowns = 0;
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (!Nodes[I].Boundary)
      Cache.UnknownIndex[I] = Cache.NumUnknowns++;
  Cache.SymbolicValid = true;
  Cache.SteadyValid = false;
  Cache.TransientValid = false;
  Cache.SparsePatternValid = false;
  Cache.SparseSteadyValid = false;
  Cache.SparseTransientValid = false;
}

void ThermalNetwork::ensureSparsePattern() const {
  if (Cache.SparsePatternValid)
    return;
  // Topology changed since the last sparse solve: drop both symbolic
  // analyses so the next factorize re-runs ordering + elimination tree
  // over the current pattern.
  Cache.SparseSteady.reset();
  Cache.SparseTransient.reset();
  Cache.SparseSteadyValid = false;
  Cache.SparseTransientValid = false;
  Cache.SparsePatternValid = true;
}

Matrix ThermalNetwork::assembleSteadyMatrix() const {
  Matrix A(Cache.NumUnknowns, Cache.NumUnknowns);
  for (const Edge &Ed : Edges) {
    bool ABound = Nodes[Ed.A].Boundary;
    bool BBound = Nodes[Ed.B].Boundary;
    if (ABound && BBound)
      continue;
    if (!ABound) {
      size_t IA = Cache.UnknownIndex[Ed.A];
      A.at(IA, IA) += Ed.GWPerK;
      if (!BBound)
        A.at(IA, Cache.UnknownIndex[Ed.B]) -= Ed.GWPerK;
    }
    if (!BBound) {
      size_t IB = Cache.UnknownIndex[Ed.B];
      A.at(IB, IB) += Ed.GWPerK;
      if (!ABound)
        A.at(IB, Cache.UnknownIndex[Ed.A]) -= Ed.GWPerK;
    }
  }
  return A;
}

Matrix ThermalNetwork::assembleTransientMatrix(double DtS) const {
  Matrix A(Cache.NumUnknowns, Cache.NumUnknowns);
  for (size_t I = 0, E = Nodes.size(); I != E; ++I) {
    if (Nodes[I].Boundary)
      continue;
    size_t U = Cache.UnknownIndex[I];
    A.at(U, U) += Nodes[I].CapacitanceJPerK / DtS;
  }
  for (const Edge &Ed : Edges) {
    bool ABound = Nodes[Ed.A].Boundary;
    bool BBound = Nodes[Ed.B].Boundary;
    if (ABound && BBound)
      continue;
    if (!ABound) {
      size_t IA = Cache.UnknownIndex[Ed.A];
      A.at(IA, IA) += Ed.GWPerK;
      if (!BBound)
        A.at(IA, Cache.UnknownIndex[Ed.B]) -= Ed.GWPerK;
    }
    if (!BBound) {
      size_t IB = Cache.UnknownIndex[Ed.B];
      A.at(IB, IB) += Ed.GWPerK;
      if (!ABound)
        A.at(IB, Cache.UnknownIndex[Ed.A]) -= Ed.GWPerK;
    }
  }
  return A;
}

SparseCsr ThermalNetwork::assembleSparse(double DtS) const {
  // Emit the structural diagonal first — value C/dt for the transient
  // system, zero for steady — then the edge contributions in edge order.
  // fromTriplets sums duplicates in input order, so repeated assembly is
  // bit-reproducible, and because the coordinate list is identical for
  // every DtS (including the steady DtS < 0 case) the steady and
  // transient factors share one symbolic analysis.
  std::vector<Triplet> Entries;
  Entries.reserve(Cache.NumUnknowns + 4 * Edges.size());
  for (size_t I = 0, E = Nodes.size(); I != E; ++I) {
    if (Nodes[I].Boundary)
      continue;
    double DiagValue = DtS > 0.0 ? Nodes[I].CapacitanceJPerK / DtS : 0.0;
    Entries.push_back({Cache.UnknownIndex[I], Cache.UnknownIndex[I], DiagValue});
  }
  for (const Edge &Ed : Edges) {
    bool ABound = Nodes[Ed.A].Boundary;
    bool BBound = Nodes[Ed.B].Boundary;
    if (ABound && BBound)
      continue;
    if (!ABound) {
      size_t IA = Cache.UnknownIndex[Ed.A];
      Entries.push_back({IA, IA, Ed.GWPerK});
      if (!BBound)
        Entries.push_back({IA, Cache.UnknownIndex[Ed.B], -Ed.GWPerK});
    }
    if (!BBound) {
      size_t IB = Cache.UnknownIndex[Ed.B];
      Entries.push_back({IB, IB, Ed.GWPerK});
      if (!ABound)
        Entries.push_back({IB, Cache.UnknownIndex[Ed.A], -Ed.GWPerK});
    }
  }
  return SparseCsr::fromTriplets(Cache.NumUnknowns, Entries);
}

Expected<std::vector<double>> ThermalNetwork::solveSteadyState() const {
  static telemetry::Counter &SolveCount =
      telemetry::Registry::global().counter("thermal.network.steady_solves");
  static telemetry::Counter &FactorCount =
      telemetry::Registry::global().counter("thermal.network.factorizations");
  static telemetry::Counter &ReuseCount =
      telemetry::Registry::global().counter("thermal.network.factor_reuses");
  telemetry::Span SolveSpan("thermal.network.steady_solve");
  SolveCount.add();
  ensureSymbolic();
  SolveSpan.attr("unknowns", static_cast<long long>(Cache.NumUnknowns));

  std::vector<double> Temps(Nodes.size(), 0.0);
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (Nodes[I].Boundary)
      Temps[I] = Nodes[I].TempC;
  if (Cache.NumUnknowns == 0)
    return Temps;

  // Numeric phase, right-hand side: sources and boundary couplings change
  // between solves without invalidating the factorization, so B is
  // assembled fresh every call (same accumulation order as the seed
  // single-pass assembly, which keeps results bit-identical).
  std::vector<double> B(Cache.NumUnknowns, 0.0);
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (!Nodes[I].Boundary)
      B[Cache.UnknownIndex[I]] = Nodes[I].SourceW;
  for (const Edge &Ed : Edges) {
    bool ABound = Nodes[Ed.A].Boundary;
    bool BBound = Nodes[Ed.B].Boundary;
    if (ABound && BBound)
      continue;
    if (!ABound && BBound)
      B[Cache.UnknownIndex[Ed.A]] += Ed.GWPerK * Nodes[Ed.B].TempC;
    if (!BBound && ABound)
      B[Cache.UnknownIndex[Ed.B]] += Ed.GWPerK * Nodes[Ed.A].TempC;
  }

  std::vector<double> Reduced;
  if (useSparsePath()) {
    static telemetry::Counter &SparseCount =
        telemetry::Registry::global().counter("thermal.network.sparse_solves");
    static telemetry::Counter &SymbolicCount =
        telemetry::Registry::global().counter(
            "thermal.network.sparse_symbolic");
    SparseCount.add();
    SolveSpan.attr("sparse", true);
    ensureSparsePattern();
    if (!Cache.SparseSteadyValid) {
      SparseCsr A = assembleSparse(-1.0);
      if (!Cache.SparseSteady.analyzed()) {
        // Symbolic phase: ordering + elimination tree, pattern-only work
        // reused across every numeric refactorization below.
        (void)Cache.SparseSteady.analyze(A);
        SymbolicCount.add();
      }
      Status Factored = Cache.SparseSteady.factorize(A);
      if (!Factored) {
        telemetry::Registry::global()
            .counter("thermal.network.solve_failures")
            .add();
        return Expected<std::vector<double>>::error(
            "thermal network is singular: an internal node has no path to "
            "any boundary (" + Factored.message() + ")");
      }
      Cache.SparseSteadyValid = true;
      FactorCount.add();
      SolveSpan.attr("factor_hit", false);
    } else {
      ReuseCount.add();
      SolveSpan.attr("factor_hit", true);
    }
    Reduced = Cache.SparseSteady.solve(std::move(B));
  } else if (CachingEnabled) {
    // Numeric phase, matrix: refactor only when a mutator dirtied the
    // conductances since the factorization was built.
    if (!Cache.SteadyValid) {
      Status Factored = Cache.SteadyFactor.factor(assembleSteadyMatrix());
      if (!Factored) {
        telemetry::Registry::global()
            .counter("thermal.network.solve_failures")
            .add();
        return Expected<std::vector<double>>::error(
            "thermal network is singular: an internal node has no path to "
            "any boundary (" + Factored.message() + ")");
      }
      Cache.SteadyValid = true;
      FactorCount.add();
      SolveSpan.attr("factor_hit", false);
    } else {
      ReuseCount.add();
      SolveSpan.attr("factor_hit", true);
    }
    Reduced = Cache.SteadyFactor.solve(std::move(B));
  } else {
    SolveSpan.attr("factor_hit", false);
    // Ablation path: rebuild and refactor every call (seed behavior).
    Expected<std::vector<double>> Solved =
        solveDense(assembleSteadyMatrix(), std::move(B));
    if (!Solved) {
      telemetry::Registry::global()
          .counter("thermal.network.solve_failures")
          .add();
      return Expected<std::vector<double>>::error(
          "thermal network is singular: an internal node has no path to any "
          "boundary (" + Solved.message() + ")");
    }
    Reduced = std::move(*Solved);
  }

  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (!Nodes[I].Boundary)
      Temps[I] = Reduced[Cache.UnknownIndex[I]];
  return Temps;
}

Status ThermalNetwork::stepTransient(std::vector<double> &Temps,
                                     double DtS) const {
  assert(Temps.size() == Nodes.size() && "state size mismatch");
  assert(DtS > 0 && "time step must be positive");
  // stepTransient sits in every simulator's inner loop: one relaxed
  // atomic add plus one causal span (two mutex-guarded aggregate updates
  // when no sink is attached; the bench_p1_solvers
  // overhead_span_tracing leg gates this cost).
  static telemetry::Counter &StepCount =
      telemetry::Registry::global().counter("thermal.network.transient_steps");
  static telemetry::Counter &FactorCount =
      telemetry::Registry::global().counter("thermal.network.factorizations");
  static telemetry::Counter &ReuseCount =
      telemetry::Registry::global().counter("thermal.network.factor_reuses");
  telemetry::Span StepSpan("thermal.network.step_transient");
  StepCount.add();

  ensureSymbolic();
  StepSpan.attr("unknowns", static_cast<long long>(Cache.NumUnknowns));
  StepSpan.attr("dt_s", DtS);
  for (size_t I = 0, E = Nodes.size(); I != E; ++I) {
    if (Nodes[I].Boundary)
      continue;
    if (Nodes[I].CapacitanceJPerK <= 0.0)
      return Status::error("transient step requires positive capacitance on "
                           "internal node '" + Nodes[I].Name + "'");
  }
  if (Cache.NumUnknowns == 0) {
    for (size_t I = 0, E = Nodes.size(); I != E; ++I)
      if (Nodes[I].Boundary)
        Temps[I] = Nodes[I].TempC;
    return Status::ok();
  }

  // Implicit Euler: (C/dt + L) T^{n+1} = (C/dt) T^n + Q + G*T_boundary.
  // The matrix depends only on capacitances, conductances, and dt; the
  // right-hand side carries the state and is assembled fresh each step in
  // the seed accumulation order (bit-identical results).
  std::vector<double> B(Cache.NumUnknowns, 0.0);
  for (size_t I = 0, E = Nodes.size(); I != E; ++I) {
    if (Nodes[I].Boundary)
      continue;
    double CoverDt = Nodes[I].CapacitanceJPerK / DtS;
    B[Cache.UnknownIndex[I]] += CoverDt * Temps[I] + Nodes[I].SourceW;
  }
  for (const Edge &Ed : Edges) {
    bool ABound = Nodes[Ed.A].Boundary;
    bool BBound = Nodes[Ed.B].Boundary;
    if (ABound && BBound)
      continue;
    if (!ABound && BBound)
      B[Cache.UnknownIndex[Ed.A]] += Ed.GWPerK * Nodes[Ed.B].TempC;
    if (!BBound && ABound)
      B[Cache.UnknownIndex[Ed.B]] += Ed.GWPerK * Nodes[Ed.A].TempC;
  }

  std::vector<double> Next;
  if (useSparsePath()) {
    static telemetry::Counter &SparseCount =
        telemetry::Registry::global().counter("thermal.network.sparse_solves");
    static telemetry::Counter &SymbolicCount =
        telemetry::Registry::global().counter(
            "thermal.network.sparse_symbolic");
    SparseCount.add();
    StepSpan.attr("sparse", true);
    ensureSparsePattern();
    // skatlint:ignore(float-equality) -- dt is a cache key here, not a
    // physics comparison: any bitwise change must trigger a refactor.
    bool SameDt = DtS == Cache.SparseTransientDtS;
    if (!Cache.SparseTransientValid || !SameDt) {
      SparseCsr A = assembleSparse(DtS);
      if (!Cache.SparseTransient.analyzed()) {
        // Symbolic phase, shared pattern with the steady system: survives
        // conductance/capacitance/dt edits, redone only on topology
        // changes.
        (void)Cache.SparseTransient.analyze(A);
        SymbolicCount.add();
      }
      Status Factored = Cache.SparseTransient.factorize(A);
      if (!Factored)
        return Status::error("transient thermal step failed: " +
                             Factored.message());
      Cache.SparseTransientValid = true;
      Cache.SparseTransientDtS = DtS;
      FactorCount.add();
      StepSpan.attr("factor_hit", false);
    } else {
      ReuseCount.add();
      StepSpan.attr("factor_hit", true);
    }
    Next = Cache.SparseTransient.solve(std::move(B));
  } else if (CachingEnabled) {
    // skatlint:ignore(float-equality) -- dt is a cache key here, not a
    // physics comparison: any bitwise change must trigger a refactor.
    bool SameDt = DtS == Cache.TransientDtS;
    if (!Cache.TransientValid || !SameDt) {
      Status Factored =
          Cache.TransientFactor.factor(assembleTransientMatrix(DtS));
      if (!Factored)
        return Status::error("transient thermal step failed: " +
                             Factored.message());
      Cache.TransientValid = true;
      Cache.TransientDtS = DtS;
      FactorCount.add();
      StepSpan.attr("factor_hit", false);
    } else {
      ReuseCount.add();
      StepSpan.attr("factor_hit", true);
    }
    Next = Cache.TransientFactor.solve(std::move(B));
  } else {
    StepSpan.attr("factor_hit", false);
    // Ablation path: rebuild and refactor every step (seed behavior).
    Expected<std::vector<double>> Solved =
        solveDense(assembleTransientMatrix(DtS), std::move(B));
    if (!Solved)
      return Status::error("transient thermal step failed: " +
                           Solved.message());
    Next = std::move(*Solved);
  }

  for (size_t I = 0, E = Nodes.size(); I != E; ++I) {
    if (Nodes[I].Boundary)
      Temps[I] = Nodes[I].TempC;
    else
      Temps[I] = Next[Cache.UnknownIndex[I]];
  }
  return Status::ok();
}

double
ThermalNetwork::boundaryHeatFlowW(NodeId Node,
                                  const std::vector<double> &Temps) const {
  assert(Node < Nodes.size() && Nodes[Node].Boundary &&
         "boundaryHeatFlowW on a non-boundary node");
  assert(Temps.size() == Nodes.size() && "state size mismatch");
  double Flow = 0.0;
  for (const Edge &Ed : Edges) {
    if (Ed.A == Node)
      Flow += Ed.GWPerK * (Temps[Ed.B] - Temps[Node]);
    else if (Ed.B == Node)
      Flow += Ed.GWPerK * (Temps[Ed.A] - Temps[Node]);
  }
  return Flow;
}

std::vector<double>
ThermalNetwork::transientResidualsW(const std::vector<double> &Before,
                                    const std::vector<double> &After,
                                    double DtS) const {
  assert(Before.size() == Nodes.size() && After.size() == Nodes.size() &&
         "state size mismatch");
  assert(DtS > 0.0 && "nonpositive time step");
  std::vector<double> Residual(Nodes.size(), 0.0);
  for (size_t I = 0, E = Nodes.size(); I != E; ++I) {
    if (Nodes[I].Boundary)
      continue;
    Residual[I] =
        Nodes[I].CapacitanceJPerK * (After[I] - Before[I]) / DtS -
        Nodes[I].SourceW;
  }
  for (const Edge &Ed : Edges) {
    double Flow = Ed.GWPerK * (After[Ed.B] - After[Ed.A]);
    if (!Nodes[Ed.A].Boundary)
      Residual[Ed.A] -= Flow;
    if (!Nodes[Ed.B].Boundary)
      Residual[Ed.B] += Flow;
  }
  return Residual;
}

double ThermalNetwork::steadyStateResidualW(
    const std::vector<double> &Temps) const {
  assert(Temps.size() == Nodes.size() && "state size mismatch");
  std::vector<double> Residual(Nodes.size(), 0.0);
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    Residual[I] = Nodes[I].SourceW;
  for (const Edge &Ed : Edges) {
    double Flow = Ed.GWPerK * (Temps[Ed.B] - Temps[Ed.A]);
    Residual[Ed.A] += Flow;
    Residual[Ed.B] -= Flow;
  }
  double Sum = 0.0;
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (!Nodes[I].Boundary)
      Sum += std::fabs(Residual[I]);
  return Sum;
}
