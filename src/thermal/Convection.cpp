//===- thermal/Convection.cpp - Convection correlations --------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "thermal/Convection.h"

#include "support/Units.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::thermal;

double rcs::thermal::reynolds(const fluids::Fluid &F, double TempC,
                              double VelocityMPerS, double LengthM) {
  assert(VelocityMPerS >= 0 && LengthM > 0 && "invalid Reynolds inputs");
  return VelocityMPerS * LengthM / F.kinematicViscosityM2PerS(TempC);
}

FlowRegime rcs::thermal::classifyDuctFlow(double Re) {
  if (Re < 2300.0)
    return FlowRegime::Laminar;
  if (Re < 4000.0)
    return FlowRegime::Transitional;
  return FlowRegime::Turbulent;
}

double rcs::thermal::flatPlateNusselt(double Re, double Pr) {
  assert(Re >= 0 && Pr > 0 && "invalid flat plate inputs");
  const double ReTransition = 5e5;
  if (Re < ReTransition)
    return 0.664 * std::sqrt(Re) * std::cbrt(Pr);
  return (0.037 * std::pow(Re, 0.8) - 871.0) * std::cbrt(Pr);
}

double rcs::thermal::cylinderCrossflowNusselt(double Re, double Pr) {
  assert(Re > 0 && Pr > 0 && "invalid cylinder inputs");
  double Pe = Re * Pr;
  assert(Pe > 0.2 && "Churchill-Bernstein is invalid for Re*Pr <= 0.2");
  (void)Pe;
  double Term = 0.62 * std::sqrt(Re) * std::cbrt(Pr) /
                std::pow(1.0 + std::pow(0.4 / Pr, 2.0 / 3.0), 0.25);
  double Correction =
      std::pow(1.0 + std::pow(Re / 282000.0, 5.0 / 8.0), 4.0 / 5.0);
  return 0.3 + Term * Correction;
}

double rcs::thermal::tubeBankNusselt(double Re, double Pr, double PrSurface,
                                     int NumRowsDeep) {
  assert(Re > 0 && Pr > 0 && PrSurface > 0 && "invalid tube bank inputs");
  // Zukauskas staggered-bank constants by Reynolds range.
  double C = 0.0, M = 0.0;
  if (Re < 500.0) {
    C = 1.04;
    M = 0.4;
  } else if (Re < 1000.0) {
    C = 0.71;
    M = 0.5;
  } else if (Re < 2e5) {
    C = 0.35;
    M = 0.60;
  } else {
    C = 0.031;
    M = 0.80;
  }
  double Nu = C * std::pow(Re, M) * std::pow(Pr, 0.36) *
              std::pow(Pr / PrSurface, 0.25);
  // Row-count correction: shallow banks transfer a little less heat.
  static const double RowFactors[] = {0.64, 0.76, 0.84, 0.89, 0.92,
                                      0.95, 0.97, 0.98, 0.99};
  if (NumRowsDeep >= 1 && NumRowsDeep <= 9)
    Nu *= RowFactors[NumRowsDeep - 1];
  return Nu;
}

double rcs::thermal::ductNusselt(double Re, double Pr) {
  assert(Re >= 0 && Pr > 0 && "invalid duct inputs");
  const double NuLaminar = 3.66;
  if (Re < 2300.0)
    return NuLaminar;
  // Gnielinski, valid 3000 < Re < 5e6; evaluated at the transition edge
  // for blending.
  auto gnielinski = [Pr](double ReT) {
    double Friction = std::pow(0.790 * std::log(ReT) - 1.64, -2.0);
    return (Friction / 8.0) * (ReT - 1000.0) * Pr /
           (1.0 + 12.7 * std::sqrt(Friction / 8.0) *
                      (std::pow(Pr, 2.0 / 3.0) - 1.0));
  };
  if (Re >= 4000.0)
    return gnielinski(Re);
  // Linear blend across the transitional band 2300..4000.
  double T = (Re - 2300.0) / (4000.0 - 2300.0);
  return NuLaminar + T * (gnielinski(4000.0) - NuLaminar);
}

double rcs::thermal::verticalPlateNaturalNusselt(double Rayleigh, double Pr) {
  assert(Rayleigh >= 0 && Pr > 0 && "invalid natural convection inputs");
  // Churchill-Chu, valid over the full Rayleigh range.
  double Denominator =
      std::pow(1.0 + std::pow(0.492 / Pr, 9.0 / 16.0), 8.0 / 27.0);
  double Root = 0.825 + 0.387 * std::pow(Rayleigh, 1.0 / 6.0) / Denominator;
  return Root * Root;
}

double rcs::thermal::verticalPlateRayleigh(const fluids::Fluid &F,
                                           double SurfaceTempC,
                                           double BulkTempC, double LengthM) {
  double FilmTempC = 0.5 * (SurfaceTempC + BulkTempC);
  double NuKin = F.kinematicViscosityM2PerS(FilmTempC);
  double Alpha = F.thermalDiffusivityM2PerS(FilmTempC);
  // Volumetric expansion: ideal-gas form for gases, density slope for
  // liquids.
  double Beta = 0.0;
  if (F.kind() == fluids::FluidKind::Gas) {
    Beta = 1.0 / units::celsiusToKelvin(FilmTempC);
  } else {
    double Rho = F.densityKgPerM3(FilmTempC);
    double DRho =
        (F.densityKgPerM3(FilmTempC + 1.0) - F.densityKgPerM3(FilmTempC - 1.0)) /
        2.0;
    Beta = std::max(1e-5, -DRho / Rho);
  }
  double DeltaT = std::fabs(SurfaceTempC - BulkTempC);
  return units::GravityMPerS2 * Beta * DeltaT * LengthM * LengthM * LengthM /
         (NuKin * Alpha);
}

double rcs::thermal::htcFromNusselt(const fluids::Fluid &F, double TempC,
                                    double Nusselt, double LengthM) {
  assert(LengthM > 0 && "characteristic length must be positive");
  return Nusselt * F.thermalConductivityWPerMK(TempC) / LengthM;
}
