//===- thermal/Spreading.h - Spreading resistance ---------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constriction/spreading resistance of a centered heat source on a
/// finite-thickness base plate, after Lee, Song, Au & Moran (1995): the
/// dimensionless constriction resistance psi is evaluated from the source
/// and plate radii, the plate thickness, and the Biot number of the sink's
/// convective back side. Used by the heat-sink models to replace a fixed
/// empirical multiplier: a 20 mm die on a 50 mm sink base genuinely costs
/// more than the 1-D conduction term alone.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_THERMAL_SPREADING_H
#define RCS_THERMAL_SPREADING_H

namespace rcs {
namespace thermal {

/// Inputs for the spreading-resistance evaluation. Rectangular source and
/// plate are mapped to equivalent-area circles, the standard engineering
/// practice for this correlation.
struct SpreadingInputs {
  double SourceAreaM2 = 4e-4;    ///< Heated footprint (die or heat slug).
  double PlateAreaM2 = 2.5e-3;   ///< Sink base footprint.
  double PlateThicknessM = 4e-3;
  double PlateConductivityWPerMK = 390.0;
  /// Effective film coefficient on the fin side of the base (h_eff =
  /// 1 / (R_fins * A_plate)), used for the Biot number.
  double EffectiveHtcWPerM2K = 1500.0;
};

/// Total source-to-backside resistance of the base: 1-D conduction plus
/// the spreading (constriction) term, K/W.
double spreadingResistanceKPerW(const SpreadingInputs &Inputs);

/// Just the constriction term (excess over 1-D conduction), K/W.
double constrictionResistanceKPerW(const SpreadingInputs &Inputs);

} // namespace thermal
} // namespace rcs

#endif // RCS_THERMAL_SPREADING_H
