//===- thermal/Spreading.cpp - Spreading resistance ----------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "thermal/Spreading.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::thermal;

double
rcs::thermal::constrictionResistanceKPerW(const SpreadingInputs &Inputs) {
  assert(Inputs.SourceAreaM2 > 0 && Inputs.PlateAreaM2 > 0 &&
         Inputs.PlateThicknessM > 0 &&
         Inputs.PlateConductivityWPerMK > 0 &&
         Inputs.EffectiveHtcWPerM2K > 0 && "invalid spreading inputs");
  // Equivalent radii.
  double SourceR = std::sqrt(Inputs.SourceAreaM2 / M_PI);
  double PlateR = std::sqrt(Inputs.PlateAreaM2 / M_PI);
  double Epsilon = std::min(SourceR / PlateR, 1.0);
  if (Epsilon >= 1.0)
    return 0.0; // Full-coverage source: no constriction.

  double Tau = Inputs.PlateThicknessM / PlateR;
  double Biot = Inputs.EffectiveHtcWPerM2K * PlateR /
                Inputs.PlateConductivityWPerMK;

  // Lee et al. (1995): lambda = pi + 1/(sqrt(pi) eps);
  // phi = (tanh(lambda tau) + lambda/Bi) / (1 + lambda/Bi tanh(lambda tau));
  // psi_avg = (1 - eps)^1.5 phi / 2.
  double Lambda = M_PI + 1.0 / (std::sqrt(M_PI) * Epsilon);
  double TanhTerm = std::tanh(Lambda * Tau);
  double Phi =
      (TanhTerm + Lambda / Biot) / (1.0 + (Lambda / Biot) * TanhTerm);
  double Psi = std::pow(1.0 - Epsilon, 1.5) * Phi / 2.0;

  return Psi / (Inputs.PlateConductivityWPerMK * SourceR * std::sqrt(M_PI));
}

double
rcs::thermal::spreadingResistanceKPerW(const SpreadingInputs &Inputs) {
  double OneD = Inputs.PlateThicknessM /
                (Inputs.PlateConductivityWPerMK * Inputs.PlateAreaM2);
  return OneD + constrictionResistanceKPerW(Inputs);
}
