//===- thermal/Fleet.h - Datacenter-scale fleet thermal networks -*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builder for datacenter-scale thermal networks: N racks of M modules
/// each, every module a chip + cold-plate pair feeding the rack coolant
/// loop, every loop rejecting heat to one facility-water boundary, with
/// neighbor-rack coupling along the row. The resulting reduced systems
/// (N * (1 + 2M) unknowns — 4k+ at a few hundred racks) are what the
/// sparse LDL^T path in support/SparseMatrix.h exists for; the dense path
/// is O(n^3) per factorization and infeasible at this scale.
///
/// All public knobs are dimension-checked quantities (support/Quantity.h).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_THERMAL_FLEET_H
#define RCS_THERMAL_FLEET_H

#include "support/Quantity.h"
#include "thermal/Network.h"

#include <vector>

namespace rcs {
namespace thermal {

/// Shape and lumped parameters of a fleet thermal model. Defaults sketch
/// a skat-like rack row: 8-FPGA immersion modules at 850 W, rack CDUs on
/// shared facility water at 18 C.
struct FleetConfig {
  size_t NumRacks = 32;
  size_t ModulesPerRack = 8;

  /// Facility chilled-water boundary temperature.
  units::Celsius FacilityWaterTemp{18.0};
  /// Heat injected at each module's chip node.
  units::Watts ModulePower{850.0};
  /// Lumped capacitance of a module's dies + package.
  units::JoulesPerKelvin ChipCapacitance{120.0};
  /// Lumped capacitance of a module's cold plate / bath interface.
  units::JoulesPerKelvin PlateCapacitance{420.0};
  /// Coolant inventory of one rack loop.
  units::JoulesPerKelvin LoopCapacitance{5200.0};
  /// Chip to cold-plate conductance per module.
  units::WattsPerKelvin ChipToPlate{55.0};
  /// Cold plate to rack-loop conductance per module.
  units::WattsPerKelvin PlateToLoop{34.0};
  /// Rack loop to facility water conductance (the CDU).
  units::WattsPerKelvin LoopToFacility{480.0};
  /// Neighbor-rack loop coupling along the row (shared return manifold).
  units::WattsPerKelvin RackCoupling{6.0};
};

/// A built fleet network plus the node handles a driver needs: the
/// facility boundary, one loop node per rack, and chip/plate nodes in
/// rack-major order (rack R, module M at index R * ModulesPerRack + M).
struct FleetNetwork {
  ThermalNetwork Net;
  NodeId Facility = 0;
  std::vector<NodeId> RackLoops;
  std::vector<NodeId> Chips;
  std::vector<NodeId> Plates;
};

/// Unknown count of the reduced system for \p Config:
/// NumRacks * (1 + 2 * ModulesPerRack).
size_t fleetUnknowns(const FleetConfig &Config);

/// Builds the fleet network for \p Config. Deterministic: the same
/// config always produces the same node ordering and edge list.
FleetNetwork buildFleetNetwork(const FleetConfig &Config);

} // namespace thermal
} // namespace rcs

#endif // RCS_THERMAL_FLEET_H
