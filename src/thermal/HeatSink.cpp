//===- thermal/HeatSink.cpp - Heat sink models ------------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "thermal/HeatSink.h"

#include "thermal/Spreading.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::thermal;

double rcs::thermal::sinkMaterialConductivityWPerMK(SinkMaterial Material) {
  switch (Material) {
  case SinkMaterial::Aluminum:
    return 205.0;
  case SinkMaterial::Copper:
    return 390.0;
  }
  assert(false && "unknown sink material");
  return 0.0;
}

HeatSink::~HeatSink() = default;

/// Straight-fin efficiency tanh(mL)/(mL).
static double finEfficiency(double M, double LengthM) {
  double Ml = M * LengthM;
  if (Ml < 1e-9)
    return 1.0;
  return std::tanh(Ml) / Ml;
}

/// Base resistance: 1-D conduction through the plate plus the Lee et al.
/// constriction term for the centered heat slug, with the Biot number
/// taken from the fin-side convection.
static double baseResistance(double SourceAreaM2, double ThicknessM,
                             double AreaM2, double Conductivity,
                             double ConvectionResistanceKPerW) {
  SpreadingInputs Inputs;
  Inputs.SourceAreaM2 = SourceAreaM2;
  Inputs.PlateAreaM2 = AreaM2;
  Inputs.PlateThicknessM = ThicknessM;
  Inputs.PlateConductivityWPerMK = Conductivity;
  Inputs.EffectiveHtcWPerM2K =
      1.0 / (std::max(ConvectionResistanceKPerW, 1e-9) * AreaM2);
  return spreadingResistanceKPerW(Inputs);
}

//===----------------------------------------------------------------------===//
// PlateFinHeatSink
//===----------------------------------------------------------------------===//

PlateFinHeatSink::PlateFinHeatSink(std::string Name, PlateFinGeometry Geometry)
    : HeatSink(std::move(Name)), Geom(Geometry) {
  assert(Geom.FinCount >= 2 && "a plate-fin sink needs at least two fins");
  assert(Geom.FinCount * Geom.FinThicknessM < Geom.BaseWidthM &&
         "fins wider than the base");
}

double PlateFinHeatSink::footprintAreaM2() const {
  return Geom.BaseLengthM * Geom.BaseWidthM;
}

double PlateFinHeatSink::heightM() const {
  return Geom.BaseThicknessM + Geom.FinHeightM;
}

SinkEvaluation PlateFinHeatSink::evaluate(const fluids::Fluid &F,
                                          double BulkTempC,
                                          double ApproachVelocityMPerS,
                                          double SurfaceTempC) const {
  (void)SurfaceTempC; // Duct correlations need no surface correction here.
  SinkEvaluation Out;
  assert(ApproachVelocityMPerS > 0 && "plate-fin sink requires forced flow");

  const int N = Geom.FinCount;
  double GapM = (Geom.BaseWidthM - N * Geom.FinThicknessM) /
                static_cast<double>(N - 1);
  assert(GapM > 0 && "non-positive fin gap");

  // Continuity: flow accelerates into the inter-fin channels.
  double FreeFraction = (Geom.BaseWidthM - N * Geom.FinThicknessM) /
                        Geom.BaseWidthM;
  double ChannelVelocity = ApproachVelocityMPerS / FreeFraction;

  // Rectangular channel, hydraulic diameter of a gap x fin-height duct.
  double Dh = 2.0 * GapM * Geom.FinHeightM / (GapM + Geom.FinHeightM);
  double Re = reynolds(F, BulkTempC, ChannelVelocity, Dh);
  double Pr = F.prandtl(BulkTempC);
  double Nu = ductNusselt(Re, Pr);
  // Thermal entrance enhancement for short channels (Hausen): the Graetz
  // number Gz = Re*Pr*Dh/L is large for these stubby channels, so the
  // developing region dominates laminar transfer.
  if (Re < 2300.0) {
    double Gz = Re * Pr * Dh / Geom.BaseLengthM;
    Nu = 3.66 + 0.0668 * Gz / (1.0 + 0.04 * std::pow(Gz, 2.0 / 3.0));
  }
  double H = htcFromNusselt(F, BulkTempC, Nu, Dh);

  double Km = sinkMaterialConductivityWPerMK(Geom.Material);
  double MFin = std::sqrt(2.0 * H / (Km * Geom.FinThicknessM));
  double Efficiency = finEfficiency(MFin, Geom.FinHeightM);

  double FinArea = 2.0 * N * Geom.FinHeightM * Geom.BaseLengthM;
  double BaseExposed = (Geom.BaseWidthM - N * Geom.FinThicknessM) *
                       Geom.BaseLengthM;
  double EffectiveArea = Efficiency * FinArea + BaseExposed;

  Out.FilmCoefficientWPerM2K = H;
  Out.EffectiveAreaM2 = EffectiveArea;
  Out.ReynoldsNumber = Re;
  Out.Regime = classifyDuctFlow(Re);
  double ConvResistance = 1.0 / (H * EffectiveArea);
  Out.ResistanceKPerW =
      ConvResistance + baseResistance(Geom.HeatSourceAreaM2,
                                      Geom.BaseThicknessM,
                                      footprintAreaM2(), Km,
                                      ConvResistance);

  // Darcy-Weisbach along the channel plus inlet/outlet losses.
  double Rho = F.densityKgPerM3(BulkTempC);
  double DynamicHead = 0.5 * Rho * ChannelVelocity * ChannelVelocity;
  double Friction = Re < 2300.0 ? 96.0 / std::max(Re, 1.0)
                                : 0.316 / std::pow(Re, 0.25);
  Out.PressureDropPa =
      (Friction * Geom.BaseLengthM / Dh + 1.5) * DynamicHead;
  return Out;
}

//===----------------------------------------------------------------------===//
// PinFinHeatSink
//===----------------------------------------------------------------------===//

PinFinHeatSink::PinFinHeatSink(std::string Name, PinFinGeometry Geometry)
    : HeatSink(std::move(Name)), Geom(Geometry) {
  assert(Geom.PitchM > Geom.PinDiameterM && "pins overlap at this pitch");
  assert(Geom.TurbulatorFactor >= 1.0 && Geom.TurbulatorFactor <= 2.0 &&
         "implausible turbulator factor");
}

int PinFinHeatSink::pinCount() const {
  int Columns = static_cast<int>(Geom.BaseWidthM / Geom.PitchM);
  return rowsDeep() * Columns;
}

int PinFinHeatSink::rowsDeep() const {
  return std::max(1, static_cast<int>(Geom.BaseLengthM / Geom.PitchM));
}

double PinFinHeatSink::footprintAreaM2() const {
  return Geom.BaseLengthM * Geom.BaseWidthM;
}

double PinFinHeatSink::heightM() const {
  return Geom.BaseThicknessM + Geom.PinHeightM;
}

SinkEvaluation PinFinHeatSink::evaluate(const fluids::Fluid &F,
                                        double BulkTempC,
                                        double ApproachVelocityMPerS,
                                        double SurfaceTempC) const {
  SinkEvaluation Out;
  assert(ApproachVelocityMPerS > 0 && "pin-fin sink requires forced flow");

  // Maximum velocity between pins (staggered bank continuity).
  double VMax = ApproachVelocityMPerS * Geom.PitchM /
                (Geom.PitchM - Geom.PinDiameterM);
  double Re = reynolds(F, BulkTempC, VMax, Geom.PinDiameterM);
  double Pr = F.prandtl(BulkTempC);
  double PrSurface = F.prandtl(SurfaceTempC);
  double Nu = tubeBankNusselt(Re, Pr, PrSurface, rowsDeep());
  Nu *= Geom.TurbulatorFactor;
  double H = htcFromNusselt(F, BulkTempC, Nu, Geom.PinDiameterM);

  double Km = sinkMaterialConductivityWPerMK(Geom.Material);
  // Pin-fin parameter; corrected length accounts for tip convection.
  double MPin = std::sqrt(4.0 * H / (Km * Geom.PinDiameterM));
  double CorrectedHeight = Geom.PinHeightM + Geom.PinDiameterM / 4.0;
  double Efficiency = finEfficiency(MPin, CorrectedHeight);

  int Pins = pinCount();
  double PinArea = Pins * M_PI * Geom.PinDiameterM * CorrectedHeight;
  double BaseExposed =
      footprintAreaM2() -
      Pins * M_PI * Geom.PinDiameterM * Geom.PinDiameterM / 4.0;
  double EffectiveArea = Efficiency * PinArea + std::max(BaseExposed, 0.0);

  Out.FilmCoefficientWPerM2K = H;
  Out.EffectiveAreaM2 = EffectiveArea;
  Out.ReynoldsNumber = Re;
  Out.Regime = Re < 1000.0 ? FlowRegime::Laminar : FlowRegime::Turbulent;
  double ConvResistance = 1.0 / (H * EffectiveArea);
  Out.ResistanceKPerW =
      ConvResistance + baseResistance(Geom.HeatSourceAreaM2,
                                      Geom.BaseThicknessM,
                                      footprintAreaM2(), Km,
                                      ConvResistance);

  // Zukauskas bank pressure drop: rows * friction * chi * dynamic head.
  double Rho = F.densityKgPerM3(BulkTempC);
  double DynamicHead = 0.5 * Rho * VMax * VMax;
  double PitchRatio = Geom.PitchM / Geom.PinDiameterM;
  double Friction =
      (0.25 + 0.118 / std::pow(PitchRatio - 1.0, 1.08)) *
      std::pow(std::max(Re, 10.0), -0.16);
  Out.PressureDropPa = rowsDeep() * Friction * DynamicHead *
                       Geom.TurbulatorFactor;
  return Out;
}
