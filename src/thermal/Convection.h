//===- thermal/Convection.h - Convection correlations -----------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dimensionless-group helpers and Nusselt-number correlations used to turn
/// fluid properties and flow conditions into film coefficients. References:
/// Incropera & DeWitt, "Fundamentals of Heat and Mass Transfer"; Zukauskas,
/// "Heat Transfer from Tubes in Crossflow" (used for the pin-fin banks the
/// paper's heat sinks are built from).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_THERMAL_CONVECTION_H
#define RCS_THERMAL_CONVECTION_H

#include "fluids/Fluid.h"

namespace rcs {
namespace thermal {

/// Flow regime classification by Reynolds number.
enum class FlowRegime { Laminar, Transitional, Turbulent };

/// Reynolds number for characteristic length \p LengthM.
double reynolds(const fluids::Fluid &F, double TempC, double VelocityMPerS,
                double LengthM);

/// Classifies duct flow: laminar below 2300, turbulent above 4000.
FlowRegime classifyDuctFlow(double Re);

/// Average flat-plate Nusselt number (mixed laminar/turbulent boundary
/// layer, transition at Re = 5e5).
double flatPlateNusselt(double Re, double Pr);

/// Churchill-Bernstein correlation for a cylinder in crossflow; valid for
/// Re*Pr > 0.2.
double cylinderCrossflowNusselt(double Re, double Pr);

/// Zukauskas correlation for a staggered bank of cylinders in crossflow.
///
/// \p Re uses the maximum inter-pin velocity; \p PrSurface is the Prandtl
/// number evaluated at the surface temperature (property-variation
/// correction, significant for oils).
double tubeBankNusselt(double Re, double Pr, double PrSurface,
                       int NumRowsDeep);

/// Fully developed duct flow: 3.66 laminar (constant wall T), Gnielinski
/// for turbulent, linear blend in the transition region.
double ductNusselt(double Re, double Pr);

/// Churchill-Chu natural-convection correlation for a vertical plate;
/// \p Rayleigh = Gr*Pr.
double verticalPlateNaturalNusselt(double Rayleigh, double Pr);

/// Rayleigh number for a vertical plate of height \p LengthM with surface
/// temperature \p SurfaceTempC in fluid at \p BulkTempC.
double verticalPlateRayleigh(const fluids::Fluid &F, double SurfaceTempC,
                             double BulkTempC, double LengthM);

/// Film coefficient h = Nu * k / L, W/(m^2*K).
double htcFromNusselt(const fluids::Fluid &F, double TempC, double Nusselt,
                      double LengthM);

} // namespace thermal
} // namespace rcs

#endif // RCS_THERMAL_CONVECTION_H
