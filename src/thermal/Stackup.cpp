//===- thermal/Stackup.cpp - Detailed CCB thermal stackup -------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Solution strategy: coolant cells are marched in flow direction (exact
/// upwind advection), chip stacks are solved as a thermal network against
/// the current cell temperatures, and the two are iterated to a fixed
/// point. This keeps the network symmetric while the advection stays
/// directional.
///
//===----------------------------------------------------------------------===//

#include "thermal/Stackup.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::thermal;

Expected<BoardStackupResult>
rcs::thermal::solveBoardStackup(const BoardStackupConfig &Config,
                                const fluids::Fluid &F) {
  std::vector<double> Powers(Config.NumFpgas, Config.ChipPowerW);
  return solveBoardStackupWithPowers(Config, F, Powers);
}

Expected<BoardStackupResult> rcs::thermal::solveBoardStackupWithPowers(
    const BoardStackupConfig &Config, const fluids::Fluid &F,
    const std::vector<double> &ChipPowersW) {
  const int N = Config.NumFpgas;
  assert(N >= 1 && "board needs chips");
  assert(static_cast<int>(ChipPowersW.size()) == N &&
         "power vector size mismatch");
  if (Config.BoardFlowM3PerS <= 0.0)
    return Expected<BoardStackupResult>::error(
        "board stackup requires positive coolant flow");

  PinFinHeatSink Sink("stackup sink", Config.Sink);

  // Chip-internal conductances (theta_jc split die->lid, TIM lid->base).
  double GDieLid = 1.0 / std::max(Config.ThetaJcKPerW, 1e-6);
  double GLidBase = 1.0 / std::max(Config.TimResistanceKPerW, 1e-6);

  // Coolant march state: CellTemp[i] is the bulk temperature downstream
  // of chip i; chips couple to the mean of their in/out temperatures.
  std::vector<double> CellTemp(N, Config.InletTempC);
  std::vector<double> LocalBulk(N, Config.InletTempC);

  BoardStackupResult Result;
  double CapacityWPerK = 0.0;
  for (int Outer = 0; Outer != 60; ++Outer) {
    double MeanBulk = 0.0;
    for (double T : LocalBulk)
      MeanBulk += T;
    MeanBulk /= N;
    CapacityWPerK = Config.BoardFlowM3PerS * F.densityKgPerM3(MeanBulk) *
                    F.specificHeatJPerKgK(MeanBulk);

    // --- Solve all chip stacks against the current bulk temperatures ----
    ThermalNetwork Net;
    std::vector<NodeId> Die(N), Lid(N), Base(N), Cell(N);
    for (int I = 0; I != N; ++I) {
      Die[I] = Net.addNode("die");
      Lid[I] = Net.addNode("lid");
      Base[I] = Net.addNode("base");
      Cell[I] = Net.addBoundaryNode("cell", LocalBulk[I]);
      Net.addConductance(Die[I], Lid[I], GDieLid);
      Net.addConductance(Lid[I], Base[I], GLidBase);
      double SinkR = Sink.thermalResistanceKPerW(
          F, LocalBulk[I], Config.ApproachVelocityMPerS,
          LocalBulk[I] + 20.0);
      Net.addResistance(Base[I], Cell[I], SinkR);
      Net.addHeatSource(Die[I], ChipPowersW[I]);
      if (I > 0 && Config.LateralConductanceWPerK > 0.0)
        Net.addConductance(Base[I], Base[I - 1],
                           Config.LateralConductanceWPerK);
    }
    Expected<std::vector<double>> Temps = Net.solveSteadyState();
    if (!Temps)
      return Expected<BoardStackupResult>::error(
          "stackup network solve failed: " + Temps.message());

    // --- Heat delivered to each cell, then march the coolant ------------
    std::vector<double> CellHeat(N, 0.0);
    for (int I = 0; I != N; ++I)
      CellHeat[I] = Net.boundaryHeatFlowW(Cell[I], *Temps);

    double MaxShift = 0.0;
    double Upstream = Config.InletTempC;
    for (int I = 0; I != N; ++I) {
      double NewCell = Upstream + CellHeat[I] / CapacityWPerK;
      double NewBulk = 0.5 * (Upstream + NewCell);
      MaxShift = std::max(MaxShift, std::fabs(NewBulk - LocalBulk[I]));
      CellTemp[I] = NewCell;
      LocalBulk[I] = NewBulk;
      Upstream = NewCell;
    }

    // Record the stack temperatures from this (latest) network solve.
    Result.DieTempC.assign(N, 0.0);
    Result.LidTempC.assign(N, 0.0);
    Result.SinkBaseTempC.assign(N, 0.0);
    for (int I = 0; I != N; ++I) {
      Result.DieTempC[I] = (*Temps)[Die[I]];
      Result.LidTempC[I] = (*Temps)[Lid[I]];
      Result.SinkBaseTempC[I] = (*Temps)[Base[I]];
    }
    if (MaxShift < 1e-7)
      break;
  }

  Result.CoolantCellTempC = CellTemp;
  Result.OutletTempC = CellTemp.back();
  Result.MaxDieTempC =
      *std::max_element(Result.DieTempC.begin(), Result.DieTempC.end());
  Result.DieGradientC = Result.DieTempC.back() - Result.DieTempC.front();

  double TotalPower = 0.0;
  for (double P : ChipPowersW)
    TotalPower += P;
  double Advected =
      CapacityWPerK * (Result.OutletTempC - Config.InletTempC);
  Result.EnergyResidualW = Advected - TotalPower;
  return Result;
}
