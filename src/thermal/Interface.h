//===- thermal/Interface.h - Thermal interface materials --------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thermal interface material (TIM) models, including the wash-out
/// degradation mechanism the paper identifies as a key failure mode of
/// earlier immersion systems ("the thermal paste between FPGA chips and
/// heat-sinks is washed out during long-term maintenance") and the
/// wash-out-resistant interface the authors developed.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_THERMAL_INTERFACE_H
#define RCS_THERMAL_INTERFACE_H

#include <string>

namespace rcs {
namespace thermal {

/// A thermal interface layer between package lid and heat-sink base.
///
/// Resistance is thickness/(k*A) plus a contact allowance, and optionally
/// grows with immersion exposure time (wash-out) at \p WashoutRatePerKh
/// fractional conductivity loss per thousand hours.
class ThermalInterface {
public:
  /// \p ConductivityWPerMK bulk conductivity, \p ThicknessM bond line,
  /// \p AreaM2 contact area, \p WashoutRatePerKh fraction of conductivity
  /// lost per 1000 h immersed (0 for wash-out-proof interfaces).
  ThermalInterface(std::string Name, double ConductivityWPerMK,
                   double ThicknessM, double AreaM2,
                   double WashoutRatePerKh = 0.0);

  const std::string &name() const { return Name; }

  /// Resistance in K/W after \p ExposureHours of immersion service.
  ///
  /// Conductivity decays exponentially with exposure; the model floors the
  /// remaining conductivity at 5% (a dry gap still conducts a little).
  double resistanceKPerW(double ExposureHours = 0.0) const;

  /// Fresh (time-zero) resistance in K/W.
  double freshResistanceKPerW() const { return resistanceKPerW(0.0); }

  /// True when the interface has lost more than half its conductivity.
  bool isDegraded(double ExposureHours) const;

  double conductivityWPerMK() const { return ConductivityWPerMK; }
  double areaM2() const { return AreaM2; }
  double washoutRatePerKh() const { return WashoutRatePerKh; }

  /// A conventional silicone thermal grease: good fresh performance but
  /// washes out in circulating oil (the failure the paper reports).
  static ThermalInterface makeSiliconeGrease(double AreaM2);

  /// The authors' wash-out-resistant interface with improved coating
  /// technology (paper Section 2): no measurable degradation in oil.
  static ThermalInterface makeSkatInterface(double AreaM2);

  /// A graphite pad alternative: immersion-stable, slightly higher fresh
  /// resistance than grease.
  static ThermalInterface makeGraphitePad(double AreaM2);

private:
  std::string Name;
  double ConductivityWPerMK;
  double ThicknessM;
  double AreaM2;
  double WashoutRatePerKh;
};

} // namespace thermal
} // namespace rcs

#endif // RCS_THERMAL_INTERFACE_H
