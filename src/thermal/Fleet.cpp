//===- thermal/Fleet.cpp - Datacenter-scale fleet thermal networks ---------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "thermal/Fleet.h"

#include <string>

using namespace rcs;
using namespace rcs::thermal;

size_t rcs::thermal::fleetUnknowns(const FleetConfig &Config) {
  return Config.NumRacks * (1 + 2 * Config.ModulesPerRack);
}

FleetNetwork rcs::thermal::buildFleetNetwork(const FleetConfig &Config) {
  FleetNetwork Fleet;
  Fleet.RackLoops.reserve(Config.NumRacks);
  Fleet.Chips.reserve(Config.NumRacks * Config.ModulesPerRack);
  Fleet.Plates.reserve(Config.NumRacks * Config.ModulesPerRack);

  Fleet.Facility =
      Fleet.Net.addBoundaryNode("facility", Config.FacilityWaterTemp);
  for (size_t R = 0; R != Config.NumRacks; ++R) {
    std::string RackName = "rack" + std::to_string(R);
    NodeId Loop =
        Fleet.Net.addNode(RackName + ".loop", Config.LoopCapacitance);
    Fleet.Net.addConductance(Loop, Fleet.Facility, Config.LoopToFacility);
    if (R != 0)
      Fleet.Net.addConductance(Fleet.RackLoops[R - 1], Loop,
                               Config.RackCoupling);
    Fleet.RackLoops.push_back(Loop);

    for (size_t M = 0; M != Config.ModulesPerRack; ++M) {
      std::string ModuleName = RackName + ".cm" + std::to_string(M);
      NodeId Plate =
          Fleet.Net.addNode(ModuleName + ".plate", Config.PlateCapacitance);
      NodeId Chip =
          Fleet.Net.addNode(ModuleName + ".chip", Config.ChipCapacitance);
      Fleet.Net.addConductance(Chip, Plate, Config.ChipToPlate);
      Fleet.Net.addConductance(Plate, Loop, Config.PlateToLoop);
      Fleet.Net.addHeatSource(Chip, Config.ModulePower);
      Fleet.Plates.push_back(Plate);
      Fleet.Chips.push_back(Chip);
    }
  }
  return Fleet;
}
