//===- thermal/Stackup.h - Detailed CCB thermal stackup ---------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A finer-grained thermal model of one immersed CCB than the lumped
/// per-FPGA resistance chain used by the module solver: every FPGA gets a
/// die / lid / sink-base node stack, the coolant is discretized into one
/// cell per chip row with advective transport between cells, and the board
/// substrate couples neighbouring stacks laterally. Used to validate the
/// lumped model (tests) and to study intra-board gradients the paper's
/// prototype thermography would show.
///
/// Advection is modeled as a directed conductance m_dot*cp from each cell
/// to the next (upwind), which is exact for steady state when paired with
/// a boundary inlet cell.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_THERMAL_STACKUP_H
#define RCS_THERMAL_STACKUP_H

#include "fluids/Fluid.h"
#include "support/Status.h"
#include "thermal/HeatSink.h"
#include "thermal/Network.h"

#include <vector>

namespace rcs {
namespace thermal {

/// Configuration of the detailed board stackup.
struct BoardStackupConfig {
  int NumFpgas = 8;          ///< Chips along the coolant path (2 rows x 4
                             ///< columns are unrolled into one path).
  double ChipPowerW = 91.0;  ///< Uniform heat per chip (callers may vary
                             ///< per chip through solveWithPowers).
  double ThetaJcKPerW = 0.09;
  double TimResistanceKPerW = 0.012;
  PinFinGeometry Sink;       ///< Per-chip sink geometry.
  /// Lateral conduction between adjacent sink bases through the board and
  /// stiffener, W/K.
  double LateralConductanceWPerK = 0.8;
  /// Coolant inlet temperature and per-board volume flow.
  double InletTempC = 27.0;
  double BoardFlowM3PerS = 1.8e-4;
  /// Free-stream approach velocity at the sinks.
  double ApproachVelocityMPerS = 0.065;
};

/// Solved per-chip temperatures of a detailed stackup.
struct BoardStackupResult {
  std::vector<double> DieTempC;
  std::vector<double> LidTempC;
  std::vector<double> SinkBaseTempC;
  std::vector<double> CoolantCellTempC; ///< Cell downstream of each chip.
  double OutletTempC = 0.0;
  double MaxDieTempC = 0.0;
  /// First-to-last die temperature difference along the coolant path.
  double DieGradientC = 0.0;
  /// Energy audit: boundary heat flow minus injected power (W); near zero
  /// when the solve is consistent.
  double EnergyResidualW = 0.0;
};

/// Builds and solves the detailed stackup network for uniform chip power.
Expected<BoardStackupResult>
solveBoardStackup(const BoardStackupConfig &Config, const fluids::Fluid &F);

/// Same, with an explicit per-chip power vector (size NumFpgas).
Expected<BoardStackupResult>
solveBoardStackupWithPowers(const BoardStackupConfig &Config,
                            const fluids::Fluid &F,
                            const std::vector<double> &ChipPowersW);

} // namespace thermal
} // namespace rcs

#endif // RCS_THERMAL_STACKUP_H
