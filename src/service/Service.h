//===- service/Service.h - Batched scenario-evaluation service --*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scenario service behind `skatsim serve`: a bounded request queue
/// with backpressure, batched dispatch onto the support/Parallel.h pool,
/// and a shared keyed SolverCacheRegistry so concurrent requests against
/// the same plant configuration hit warm LU factors and fluid-property
/// tables instead of paying cold-start per query (docs/SERVICE.md).
///
/// Threading model: submit() and drain() are safe to call concurrently
/// from any threads; evaluation inside drain() fans out with
/// rcs::parallelFor and writes responses into pre-sized slots, so the
/// rendered stream keeps submission order regardless of worker
/// scheduling. All shared state is RCS_GUARDED_BY-annotated.
///
/// Failure semantics: a malformed line, a full queue, an expired
/// deadline or a failed evaluation each produce a structured error
/// response (service/Protocol.h) — the service never crashes on input.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SERVICE_SERVICE_H
#define RCS_SERVICE_SERVICE_H

#include "service/Protocol.h"
#include "service/SolverCache.h"
#include "support/Quantity.h"
#include "support/Status.h"
#include "support/ThreadSafety.h"

#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rcs {
namespace service {

/// Tunables of the scenario service. Plain members carry the CLI-facing
/// magnitudes; the typed accessors are the Quantity mirrors (Celsius
/// setpoints, Seconds durations) in-process callers should prefer.
struct ServeConfig {
  /// Evaluation workers per batch; <= 0 means all hardware threads.
  int NumThreads = 0;
  /// Requests evaluated per drain() call.
  int MaxBatch = 8;
  /// Queue bound; submissions beyond it are rejected (queue_full).
  size_t MaxQueueDepth = 64;
  /// Deadline for requests that do not carry their own timeout_s, s.
  double DefaultTimeoutS = 30.0;
  /// Resident-entry bound of the shared solver cache.
  size_t CacheMaxEntries = 16;
  /// Master switch; off = every request reports cache "bypass".
  bool UseSolverCache = true;
  /// Integration step for transient requests without a dt_s, s.
  double TransientDtS = 2.0;
  /// Service-wide chilled-water setpoint override, C (request wins).
  std::optional<double> WaterSetpointC;
  /// Service-wide ambient-air setpoint override, C (request wins).
  std::optional<double> AmbientSetpointC;

  units::Seconds defaultTimeout() const {
    return units::Seconds(DefaultTimeoutS);
  }
  void setDefaultTimeout(units::Seconds Timeout) {
    DefaultTimeoutS = Timeout.value();
  }
  units::Seconds transientStep() const {
    return units::Seconds(TransientDtS);
  }
  void setTransientStep(units::Seconds Step) {
    TransientDtS = Step.value();
  }
  std::optional<units::Celsius> waterSetpoint() const {
    if (!WaterSetpointC)
      return std::nullopt;
    return units::Celsius(*WaterSetpointC);
  }
  void setWaterSetpoint(units::Celsius Setpoint) {
    WaterSetpointC = Setpoint.value();
  }
  std::optional<units::Celsius> ambientSetpoint() const {
    if (!AmbientSetpointC)
      return std::nullopt;
    return units::Celsius(*AmbientSetpointC);
  }
  void setAmbientSetpoint(units::Celsius Setpoint) {
    AmbientSetpointC = Setpoint.value();
  }
};

/// The batching scenario evaluator. One instance per daemon; the serve
/// loop feeds submit() and flushes with drain().
class ScenarioService {
public:
  explicit ScenarioService(ServeConfig Config = ServeConfig());
  ~ScenarioService();
  ScenarioService(const ScenarioService &) = delete;
  ScenarioService &operator=(const ScenarioService &) = delete;

  /// Parses and enqueues one request line. Returns a rendered response
  /// line immediately when the request never enters the queue (parse
  /// error, queue full); nullopt means queued — its response comes from
  /// a later drain() in submission order.
  std::optional<std::string> submit(std::string_view Line);

  /// Evaluates up to MaxBatch queued requests in parallel and appends
  /// one rendered response line per request, in submission order.
  /// Returns the number of requests drained (0 = queue was empty).
  size_t drain(std::vector<std::string> &Out);

  /// True when no request is queued.
  bool idle() const;

  /// Stream totals so far (for the closing summary line).
  ServiceSummary summary() const;

  SolverCacheStats cacheStats() const { return Cache.stats(); }

  /// Drops every cached plant entry (e.g. on config reload).
  void invalidateCache() { Cache.invalidateAll(); }

  const ServeConfig &config() const { return Config; }

  /// The shared registry (exposed for cache-semantics tests).
  SolverCacheRegistry &cache() { return Cache; }

private:
  struct Pending {
    ServiceRequest Request;
    /// Registry-clock time the request entered the queue, s.
    double EnqueueS = 0.0;
    /// Queue-wait allowance; waiting >= this long is a timeout.
    double TimeoutS = 0.0;
  };

  ServiceResponse evaluate(const ServiceRequest &Request);
  ServiceResponse evaluateSteady(const ServiceRequest &Request);
  ServiceResponse evaluateTransient(const ServiceRequest &Request);
  ServiceResponse evaluateFaults(const ServiceRequest &Request);

  const ServeConfig Config;
  SolverCacheRegistry Cache;
  mutable rcs::Mutex Mu;
  std::deque<Pending> Queue RCS_GUARDED_BY(Mu);
  ServiceSummary Totals RCS_GUARDED_BY(Mu);
};

} // namespace service
} // namespace rcs

#endif // RCS_SERVICE_SERVICE_H
