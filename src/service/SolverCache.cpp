//===- service/SolverCache.cpp - Shared keyed solver-cache registry -----------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/SolverCache.h"

#include "telemetry/Telemetry.h"

#include <cassert>
#include <cstring>

using namespace rcs;
using namespace rcs::service;

bool rcs::service::operator==(const SolverCacheKey &A,
                              const SolverCacheKey &B) {
  // dt is a cache key, not a tolerance comparison: entries are
  // interchangeable only at bit-identical steps (thermal::ThermalNetwork
  // keys its transient factor the same way).
  return A.ConfigHash == B.ConfigHash && A.DtS == B.DtS;
}

namespace {

/// FNV-1a fold helpers. Doubles are folded by representation so any
/// parameter change (however small) produces a distinct plant hash.
constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

void foldBytes(uint64_t &Hash, const void *Bytes, size_t Size) {
  const unsigned char *P = static_cast<const unsigned char *>(Bytes);
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= P[I];
    Hash *= FnvPrime;
  }
}

void fold(uint64_t &Hash, double Value) {
  uint64_t Bits = 0;
  static_assert(sizeof(Bits) == sizeof(Value), "double must be 64-bit");
  std::memcpy(&Bits, &Value, sizeof(Bits));
  foldBytes(Hash, &Bits, sizeof(Bits));
}

void fold(uint64_t &Hash, int Value) {
  foldBytes(Hash, &Value, sizeof(Value));
}

void fold(uint64_t &Hash, bool Value) {
  unsigned char Byte = Value ? 1 : 0;
  foldBytes(Hash, &Byte, sizeof(Byte));
}

void fold(uint64_t &Hash, const std::string &Value) {
  foldBytes(Hash, Value.data(), Value.size());
  // Terminator byte so {"ab","c"} and {"a","bc"} fold differently.
  unsigned char Zero = 0;
  foldBytes(Hash, &Zero, sizeof(Zero));
}

} // namespace

uint64_t
rcs::service::hashPlantConfig(const rcsystem::ModuleConfig &Module,
                              const sim::TransientConfig &Sim) {
  uint64_t Hash = FnvOffset;
  fold(Hash, Module.Name);
  fold(Hash, Module.HeightU);
  fold(Hash, Module.NumCcbs);
  fold(Hash, static_cast<int>(Module.Board.Model));
  fold(Hash, Module.Board.NumComputeFpgas);
  fold(Hash, Module.Board.SeparateControllerFpga);
  fold(Hash, Module.Board.ControllerOverheadFraction);
  fold(Hash, Module.Board.ControllerPowerFraction);
  fold(Hash, Module.Board.MiscPowerW);
  fold(Hash, Module.Load.Utilization);
  fold(Hash, Module.Load.ClockFraction);
  fold(Hash, Module.NumPsus);
  fold(Hash, Module.PsuRatedPowerW);
  fold(Hash, static_cast<int>(Module.Cooling));
  const rcsystem::ImmersionCoolingConfig &Im = Module.Immersion;
  fold(Hash, static_cast<int>(Im.CoolantKind));
  fold(Hash, Im.PumpRatedFlowM3PerS);
  fold(Hash, Im.PumpRatedHeadPa);
  fold(Hash, Im.NumPumps);
  fold(Hash, Im.ImmersedPumps);
  fold(Hash, Im.BathFlowAreaM2);
  fold(Hash, Im.BathLossCoefficient);
  fold(Hash, Im.HxUaWPerK);
  fold(Hash, Im.HxOilRatedFlowM3PerS);
  fold(Hash, Im.HxOilRatedDropPa);
  fold(Hash, static_cast<int>(Im.Tim));
  fold(Hash, Im.TimExposureHours);
  fold(Hash, static_cast<int>(Im.Distribution));
  // The asset-shaping engine tunables: capacitance anchors and the
  // property-cache toggle change warm state, so they key it.
  fold(Hash, Sim.ChipCapacitancePerFpgaJPerK);
  fold(Hash, Sim.OilVolumeM3);
  fold(Hash, Sim.UseFluidPropertyCache);
  return Hash;
}

//===----------------------------------------------------------------------===//
// Lease
//===----------------------------------------------------------------------===//

SolverCacheRegistry::Lease::Lease(Lease &&Other) noexcept
    : Registry(Other.Registry), Token(Other.Token),
      Owned(std::move(Other.Owned)), Entry(Other.Entry),
      Warm(Other.Warm) {
  Other.Registry = nullptr;
  Other.Entry = nullptr;
  Other.Token = 0;
}

SolverCacheRegistry::Lease &
SolverCacheRegistry::Lease::operator=(Lease &&Other) noexcept {
  if (this != &Other) {
    if (Registry && Owned)
      Registry->release(Token, std::move(Owned));
    Registry = Other.Registry;
    Token = Other.Token;
    Owned = std::move(Other.Owned);
    Entry = Other.Entry;
    Warm = Other.Warm;
    Other.Registry = nullptr;
    Other.Entry = nullptr;
    Other.Token = 0;
  }
  return *this;
}

SolverCacheRegistry::Lease::~Lease() {
  if (Registry && Owned)
    Registry->release(Token, std::move(Owned));
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

SolverCacheRegistry::SolverCacheRegistry(size_t MaxEntriesIn)
    : MaxEntries(MaxEntriesIn == 0 ? 1 : MaxEntriesIn) {}

SolverCacheRegistry::~SolverCacheRegistry() = default;

void SolverCacheRegistry::recordUseCounters(bool Hit) {
  // Registry-global mirrors so the service hit rate shows up in the
  // Prometheus exposition without polling every instance.
  telemetry::Registry &Telemetry = telemetry::Registry::global();
  static telemetry::Counter &Hits =
      Telemetry.counter("service.cache.hits");
  static telemetry::Counter &Misses =
      Telemetry.counter("service.cache.misses");
  (Hit ? Hits : Misses).add();
}

Expected<SolverCacheRegistry::Lease>
SolverCacheRegistry::acquire(const SolverCacheKey &Key,
                             const BuildFn &Build) {
  {
    LockGuard Lock(Mu);
    for (std::unique_ptr<Slot> &S : Slots) {
      if (!(S->Key == Key) || S->Stale)
        continue;
      if (S->Leased) {
        // The warm entry exists but is busy in another worker: build a
        // private detached entry rather than serializing the batch.
        ++Counters.Contended;
        break;
      }
      S->Leased = true;
      S->LastUse = ++UseClock;
      ++Counters.Hits;
      std::unique_ptr<PlantCacheEntry> Entry = std::move(S->Entry);
      recordUseCounters(/*Hit=*/true);
      return Lease(this, S->Token, std::move(Entry), /*Warm=*/true);
    }
    ++Counters.Misses;
  }
  recordUseCounters(/*Hit=*/false);

  // Build outside the lock: asset construction (fluid tables, property
  // resampling) is the expensive part the cache exists to amortize.
  Expected<PlantCacheEntry> Built = Build();
  if (!Built)
    return Expected<Lease>::error(Built.message());
  auto Entry = std::make_unique<PlantCacheEntry>(std::move(*Built));

  LockGuard Lock(Mu);
  // Another worker may have inserted the key meanwhile; keep ours
  // detached then (one resident entry per key).
  for (const std::unique_ptr<Slot> &S : Slots)
    if (S->Key == Key && !S->Stale)
      return Lease(this, /*Token=*/0, std::move(Entry), /*Warm=*/false);

  if (Slots.size() >= MaxEntries) {
    // Evict the least-recently-used idle slot; with every slot leased
    // the new entry stays detached (the bound holds).
    size_t Victim = SIZE_MAX;
    for (size_t I = 0; I != Slots.size(); ++I) {
      if (Slots[I]->Leased)
        continue;
      if (Victim == SIZE_MAX ||
          Slots[I]->LastUse < Slots[Victim]->LastUse)
        Victim = I;
    }
    if (Victim == SIZE_MAX)
      return Lease(this, /*Token=*/0, std::move(Entry), /*Warm=*/false);
    Slots.erase(Slots.begin() + static_cast<ptrdiff_t>(Victim));
    ++Counters.Evictions;
  }

  auto NewSlot = std::make_unique<Slot>();
  NewSlot->Key = Key;
  NewSlot->Token = ++NextToken;
  NewSlot->Leased = true;
  NewSlot->LastUse = ++UseClock;
  uint64_t Token = NewSlot->Token;
  Slots.push_back(std::move(NewSlot));
  return Lease(this, Token, std::move(Entry), /*Warm=*/false);
}

void SolverCacheRegistry::release(uint64_t Token,
                                  std::unique_ptr<PlantCacheEntry> Entry) {
  if (Token == 0)
    return; // Detached: the entry dies here.
  LockGuard Lock(Mu);
  for (size_t I = 0; I != Slots.size(); ++I) {
    Slot &S = *Slots[I];
    if (S.Token != Token)
      continue;
    if (S.Stale) {
      Slots.erase(Slots.begin() + static_cast<ptrdiff_t>(I));
      return;
    }
    S.Leased = false;
    S.Entry = std::move(Entry);
    return;
  }
  // The slot was invalidated-and-erased while leased out; nothing to
  // restore.
}

void SolverCacheRegistry::invalidate(const SolverCacheKey &Key) {
  LockGuard Lock(Mu);
  for (size_t I = 0; I != Slots.size(); ++I) {
    if (!(Slots[I]->Key == Key))
      continue;
    ++Counters.Invalidations;
    if (Slots[I]->Leased)
      Slots[I]->Stale = true;
    else
      Slots.erase(Slots.begin() + static_cast<ptrdiff_t>(I));
    return;
  }
}

void SolverCacheRegistry::invalidateAll() {
  LockGuard Lock(Mu);
  for (size_t I = Slots.size(); I != 0; --I) {
    Slot &S = *Slots[I - 1];
    ++Counters.Invalidations;
    if (S.Leased)
      S.Stale = true;
    else
      Slots.erase(Slots.begin() + static_cast<ptrdiff_t>(I - 1));
  }
}

SolverCacheStats SolverCacheRegistry::stats() const {
  LockGuard Lock(Mu);
  SolverCacheStats Out = Counters;
  Out.Entries = Slots.size();
  return Out;
}
