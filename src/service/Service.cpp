//===- service/Service.cpp - Batched scenario-evaluation service --------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "core/Designs.h"
#include "faults/Engine.h"
#include "faults/Scenario.h"
#include "sim/SolverAssets.h"
#include "sim/Transient.h"
#include "support/Parallel.h"
#include "support/StringUtils.h"
#include "support/Units.h"
#include "system/Cooling.h"
#include "system/Module.h"
#include "system/Monitoring.h"
#include "telemetry/Json.h"
#include "telemetry/Span.h"
#include "telemetry/Telemetry.h"

#include <algorithm>

using namespace rcs;
using namespace rcs::service;

namespace {

ServiceResponse errorResponse(const std::string &Id, ErrorKind Kind,
                              std::string Message) {
  ServiceResponse Response;
  Response.Id = Id;
  Response.Ok = false;
  Response.Error = Kind;
  Response.ErrorMessage = std::move(Message);
  return Response;
}

/// Result payloads mirror the one-shot CLI reports; every double renders
/// at %.17g so equality against a direct evaluation is bit-exact.
std::string renderSteadyResult(const rcsystem::ModuleThermalReport &Report) {
  std::string Json = "{";
  Json += "\"max_junction_c\": " + renderExactNumber(Report.MaxJunctionTempC);
  Json += ", \"mean_junction_c\": " +
          renderExactNumber(Report.MeanJunctionTempC);
  Json += ", \"coolant_hot_c\": " + renderExactNumber(Report.CoolantHotTempC);
  Json +=
      ", \"coolant_cold_c\": " + renderExactNumber(Report.CoolantColdTempC);
  Json += ", \"it_power_w\": " + renderExactNumber(Report.ItPowerW);
  Json += ", \"total_heat_w\": " + renderExactNumber(Report.TotalHeatW);
  Json += ", \"coolant_flow_m3_per_s\": " +
          renderExactNumber(Report.CoolantFlowM3PerS);
  Json += ", \"per_fpga_power_w\": " +
          renderExactNumber(Report.Fpgas.empty() ? 0.0
                                                 : Report.Fpgas.front().PowerW);
  Json += formatString(", \"within_reliable_limit\": %s",
                       Report.WithinReliableLimit ? "true" : "false");
  Json += formatString(", \"warnings\": %zu", Report.Warnings.size());
  Json += "}";
  return Json;
}

std::string
renderTransientResult(const std::vector<sim::TraceSample> &Trace) {
  const sim::TraceSample &Last = Trace.back();
  std::string Json = "{";
  Json += "\"end_time_s\": " + renderExactNumber(Last.TimeS);
  Json += ", \"max_junction_c\": " + renderExactNumber(Last.MaxJunctionTempC);
  Json += ", \"oil_c\": " + renderExactNumber(Last.OilTempC);
  Json += ", \"power_w\": " + renderExactNumber(Last.TotalPowerW);
  Json += ", \"pump_speed\": " + renderExactNumber(Last.PumpSpeedFraction);
  Json += ", \"clock_fraction\": " + renderExactNumber(Last.ClockFraction);
  Json += formatString(", \"alarm\": \"%s\"",
                       rcsystem::alarmLevelName(Last.Alarm));
  Json += formatString(", \"shut_down\": %s",
                       Last.ShutDown ? "true" : "false");
  Json += formatString(", \"samples\": %zu", Trace.size());
  Json += "}";
  return Json;
}

std::string renderFaultsResult(const faults::ScenarioOutcome &Outcome) {
  std::string Json = "{";
  Json += "\"name\": " + telemetry::jsonQuote(Outcome.Name);
  Json +=
      ", \"availability\": " + renderExactNumber(Outcome.AvailabilityFraction);
  Json += ", \"throughput_retained\": " +
          renderExactNumber(Outcome.ThroughputRetainedFraction);
  Json += ", \"max_junction_c\": " + renderExactNumber(Outcome.MaxJunctionC);
  Json +=
      ", \"final_junction_c\": " + renderExactNumber(Outcome.FinalJunctionC);
  Json += ", \"time_to_first_critical_s\": " +
          renderExactNumber(Outcome.TimeToFirstCriticalS);
  Json += formatString(", \"faults_injected\": %d", Outcome.FaultsInjected);
  Json += formatString(", \"faults_cleared\": %d", Outcome.FaultsCleared);
  Json += formatString(", \"actions\": %d", Outcome.ActionsTaken);
  Json +=
      formatString(", \"modules_shut_down\": %d", Outcome.ModulesShutDown);
  Json += formatString(", \"safe_degraded_end\": %s",
                       Outcome.SafeDegradedEnd ? "true" : "false");
  Json += formatString(", \"audit_within_budget\": %s",
                       Outcome.AuditWithinBudget ? "true" : "false");
  Json += formatString(", \"events\": %zu", Outcome.Events.size());
  Json += "}";
  return Json;
}

} // namespace

ScenarioService::ScenarioService(ServeConfig ConfigIn)
    : Config(ConfigIn), Cache(ConfigIn.CacheMaxEntries) {}

ScenarioService::~ScenarioService() = default;

std::optional<std::string> ScenarioService::submit(std::string_view Line) {
  telemetry::Registry &Reg = telemetry::Registry::global();
  static telemetry::Counter &Requests = Reg.counter("service.requests");
  static telemetry::Counter &RejectedFull =
      Reg.counter("service.rejected.queue_full");
  static telemetry::Gauge &Depth = Reg.gauge("service.queue.depth");
  Requests.add();

  Expected<ServiceRequest> Request = parseServiceRequest(Line);
  if (!Request) {
    // The id (if any) did not survive strict parsing; the empty id plus
    // in-order rendering still lets the client attribute the error.
    ServiceResponse Response =
        errorResponse("", ErrorKind::Parse, Request.message());
    LockGuard Lock(Mu);
    ++Totals.Requests;
    ++Totals.ErrorCount;
    return renderServiceResponse(Response);
  }

  Pending Item;
  Item.EnqueueS = Reg.nowSeconds();
  Item.TimeoutS = Request->TimeoutS.value_or(Config.DefaultTimeoutS);
  Item.Request = std::move(*Request);

  size_t DepthNow = 0;
  std::optional<std::string> Rejection;
  {
    LockGuard Lock(Mu);
    ++Totals.Requests;
    if (Queue.size() >= Config.MaxQueueDepth) {
      ++Totals.Rejected;
      ++Totals.ErrorCount;
      Rejection = renderServiceResponse(errorResponse(
          Item.Request.Id, ErrorKind::QueueFull,
          formatString("queue full (depth %zu)", Queue.size())));
    } else {
      Queue.push_back(std::move(Item));
    }
    DepthNow = Queue.size();
  }
  Depth.set(static_cast<double>(DepthNow));
  if (Rejection)
    RejectedFull.add();
  return Rejection;
}

size_t ScenarioService::drain(std::vector<std::string> &Out) {
  telemetry::Registry &Reg = telemetry::Registry::global();
  static telemetry::Counter &Batches = Reg.counter("service.batches");
  static telemetry::Counter &OkCount = Reg.counter("service.responses.ok");
  static telemetry::Counter &ErrCount =
      Reg.counter("service.responses.error");
  static telemetry::Counter &Timeouts = Reg.counter("service.timeouts");
  static telemetry::Gauge &Depth = Reg.gauge("service.queue.depth");
  static telemetry::Gauge &HitRate = Reg.gauge("service.cache.hit_rate");
  static telemetry::Gauge &CacheEntries =
      Reg.gauge("service.cache.entries");
  static telemetry::Histogram &BatchSize =
      Reg.histogram("service.batch.size");
  static telemetry::Histogram &QueueWait =
      Reg.histogram("service.queue.wait_s");
  static telemetry::Histogram &Latency =
      Reg.histogram("service.request.latency_s");

  std::vector<Pending> Batch;
  size_t DepthAfter = 0;
  {
    LockGuard Lock(Mu);
    size_t Take =
        std::min<size_t>(static_cast<size_t>(std::max(Config.MaxBatch, 1)),
                         Queue.size());
    Batch.reserve(Take);
    for (size_t I = 0; I != Take; ++I) {
      Batch.push_back(std::move(Queue.front()));
      Queue.pop_front();
    }
    DepthAfter = Queue.size();
  }
  Depth.set(static_cast<double>(DepthAfter));
  if (Batch.empty())
    return 0;
  Batches.add();
  BatchSize.record(static_cast<double>(Batch.size()));

  // Fan out onto the pool; each item writes its pre-sized slot so the
  // rendered stream keeps submission order (support/Parallel.h).
  const telemetry::SpanContext Parent = telemetry::currentSpanContext();
  std::vector<ServiceResponse> Responses(Batch.size());
  parallelFor(
      clampThreadCount(Config.NumThreads), Batch.size(), [&](size_t I) {
        telemetry::ScopedSpanParent Adopt(Parent);
        telemetry::Span RequestSpan(Reg, "service.request");
        const Pending &Item = Batch[I];
        RequestSpan.attr("id", Item.Request.Id);
        RequestSpan.attr("type", requestKindName(Item.Request.Kind));
        double WaitS = Reg.nowSeconds() - Item.EnqueueS;
        QueueWait.record(WaitS);
        if (WaitS >= Item.TimeoutS)
          Responses[I] = errorResponse(
              Item.Request.Id, ErrorKind::Timeout,
              formatString("deadline expired after %.3f s in queue "
                           "(timeout %.3f s)",
                           WaitS, Item.TimeoutS));
        else
          Responses[I] = evaluate(Item.Request);
        Responses[I].LatencyS = Reg.nowSeconds() - Item.EnqueueS;
        RequestSpan.attr("cache", Responses[I].CacheState);
      });

  uint64_t Ok = 0, Errors = 0, TimedOut = 0, Hits = 0, Misses = 0;
  for (const ServiceResponse &Response : Responses) {
    Out.push_back(renderServiceResponse(Response));
    Latency.record(Response.LatencyS);
    if (Response.Ok)
      ++Ok;
    else
      ++Errors;
    if (Response.Error == ErrorKind::Timeout)
      ++TimedOut;
    if (Response.CacheState == "warm")
      ++Hits;
    else if (Response.CacheState == "cold")
      ++Misses;
  }
  OkCount.add(static_cast<int64_t>(Ok));
  ErrCount.add(static_cast<int64_t>(Errors));
  Timeouts.add(static_cast<int64_t>(TimedOut));
  {
    LockGuard Lock(Mu);
    Totals.OkCount += Ok;
    Totals.ErrorCount += Errors;
    Totals.TimedOut += TimedOut;
    Totals.CacheHits += Hits;
    Totals.CacheMisses += Misses;
  }
  SolverCacheStats Stats = Cache.stats();
  CacheEntries.set(static_cast<double>(Stats.Entries));
  if (Stats.Hits + Stats.Misses > 0)
    HitRate.set(static_cast<double>(Stats.Hits) /
                static_cast<double>(Stats.Hits + Stats.Misses));
  return Batch.size();
}

bool ScenarioService::idle() const {
  LockGuard Lock(Mu);
  return Queue.empty();
}

ServiceSummary ScenarioService::summary() const {
  LockGuard Lock(Mu);
  return Totals;
}

ServiceResponse ScenarioService::evaluate(const ServiceRequest &Request) {
  switch (Request.Kind) {
  case RequestKind::Steady:
    return evaluateSteady(Request);
  case RequestKind::Transient:
    return evaluateTransient(Request);
  case RequestKind::Faults:
    return evaluateFaults(Request);
  }
  return errorResponse(Request.Id, ErrorKind::Evaluation,
                       "unreachable request kind");
}

ServiceResponse
ScenarioService::evaluateSteady(const ServiceRequest &Request) {
  Expected<rcsystem::ModuleConfig> ModuleCfg =
      core::designModuleByName(Request.Design);
  if (!ModuleCfg)
    return errorResponse(Request.Id, ErrorKind::Evaluation,
                         ModuleCfg.message());

  // Same defaults as `skatsim solve`; the ServeConfig setpoints slot in
  // between the CLI defaults and per-request overrides.
  rcsystem::ExternalConditions Conditions = core::makeNominalConditions();
  Conditions.AmbientAirTempC =
      Request.AmbientC.value_or(Config.AmbientSetpointC.value_or(25.0));
  Conditions.WaterInletTempC =
      Request.WaterC.value_or(Config.WaterSetpointC.value_or(18.0));
  Conditions.WaterFlowM3PerS =
      units::litersPerMinuteToM3PerS(Request.WaterLpm.value_or(18.0));
  fpga::WorkloadPoint Load = ModuleCfg->Load;
  Load.Utilization = Request.Util.value_or(Load.Utilization);
  Load.ClockFraction = Request.Clock.value_or(Load.ClockFraction);

  auto Solve = [&](const rcsystem::ModuleConfig &Module) -> ServiceResponse {
    rcsystem::ComputationalModule TheModule(Module);
    Expected<rcsystem::ModuleThermalReport> Report =
        TheModule.solveSteadyState(Conditions, Load);
    if (!Report)
      return errorResponse(Request.Id, ErrorKind::Evaluation,
                           Report.message());
    ServiceResponse Response;
    Response.Id = Request.Id;
    Response.Ok = true;
    Response.ResultJson = renderSteadyResult(*Report);
    return Response;
  };

  if (!Config.UseSolverCache)
    return Solve(*ModuleCfg);

  // Steady solves rebuild their fluids internally (system/Cooling.cpp),
  // so the registry only amortizes the resolved plant config; the entry
  // carries no transient assets (DtS = 0 keys the steady family).
  sim::TransientConfig SimCfg;
  SolverCacheKey Key;
  Key.ConfigHash = hashPlantConfig(*ModuleCfg, SimCfg);
  Key.DtS = 0.0;
  Expected<SolverCacheRegistry::Lease> Lease =
      Cache.acquire(Key, [&]() -> Expected<PlantCacheEntry> {
        PlantCacheEntry Entry;
        Entry.Module = *ModuleCfg;
        Entry.SimConfig = SimCfg;
        return Entry;
      });
  if (!Lease)
    return errorResponse(Request.Id, ErrorKind::Evaluation, Lease.message());
  ServiceResponse Response = Solve(Lease->entry().Module);
  Response.CacheState = Lease->warm() ? "warm" : "cold";
  return Response;
}

ServiceResponse
ScenarioService::evaluateTransient(const ServiceRequest &Request) {
  Expected<rcsystem::ModuleConfig> ModuleCfg =
      core::designModuleByName(Request.Design);
  if (!ModuleCfg)
    return errorResponse(Request.Id, ErrorKind::Evaluation,
                         ModuleCfg.message());
  if (ModuleCfg->Cooling != rcsystem::CoolingKind::Immersion)
    return errorResponse(Request.Id, ErrorKind::Evaluation,
                         "the transient simulator models immersion designs");

  double Hours = Request.Hours.value_or(4.0);
  sim::TransientConfig SimCfg;
  SimCfg.TimeStepS = Request.DtS.value_or(Config.TransientDtS);
  rcsystem::ExternalConditions Conditions = core::makeNominalConditions();
  if (Request.AmbientC || Config.AmbientSetpointC)
    Conditions.AmbientAirTempC =
        Request.AmbientC.value_or(*Config.AmbientSetpointC);
  if (Request.WaterC || Config.WaterSetpointC)
    Conditions.WaterInletTempC =
        Request.WaterC.value_or(*Config.WaterSetpointC);

  sim::TransientSimulator Simulator(*ModuleCfg, Conditions, SimCfg);
  if (Request.PumpFailH)
    Simulator.schedulePumpSpeed(*Request.PumpFailH * 3600.0, 0.0);

  ServiceResponse Response;
  Response.Id = Request.Id;

  // The warm path: borrow the plant's solver assets (fluid property
  // caches, persistent network with its keyed LU factors) from the
  // shared registry. Results are bit-identical warm or cold
  // (sim/SolverAssets.h); service_test asserts it.
  SolverCacheRegistry::Lease Lease;
  if (Config.UseSolverCache) {
    SolverCacheKey Key;
    Key.ConfigHash = hashPlantConfig(*ModuleCfg, SimCfg);
    Key.DtS = SimCfg.TimeStepS;
    Expected<SolverCacheRegistry::Lease> Acquired =
        Cache.acquire(Key, [&]() -> Expected<PlantCacheEntry> {
          PlantCacheEntry Entry;
          Entry.Module = *ModuleCfg;
          Entry.SimConfig = SimCfg;
          Entry.Assets = std::make_unique<sim::TransientSolverAssets>(
              *ModuleCfg, SimCfg);
          return Entry;
        });
    if (!Acquired)
      return errorResponse(Request.Id, ErrorKind::Evaluation,
                           Acquired.message());
    Lease = std::move(*Acquired);
    Simulator.setSolverAssets(Lease.entry().Assets.get());
    Response.CacheState = Lease.warm() ? "warm" : "cold";
  }

  Expected<std::vector<sim::TraceSample>> Trace =
      Simulator.run(Hours * 3600.0);
  if (!Trace)
    return errorResponse(Request.Id, ErrorKind::Evaluation, Trace.message());
  Response.Ok = true;
  Response.ResultJson = renderTransientResult(*Trace);
  return Response;
}

ServiceResponse
ScenarioService::evaluateFaults(const ServiceRequest &Request) {
  Expected<faults::Scenario> Scenario =
      faults::loadScenarioFile(Request.ScenarioPath);
  if (!Scenario)
    return errorResponse(Request.Id, ErrorKind::Evaluation,
                         Scenario.message());
  if (Request.Seed)
    Scenario->Seed = *Request.Seed;
  if (Request.Hours)
    Scenario->DurationS = *Request.Hours * 3600.0;
  // Fault scenarios rebuild their closed-loop world per run and are
  // dominated by the run itself, not setup: they bypass the cache.
  Expected<faults::ScenarioOutcome> Outcome =
      faults::runScenario(*Scenario, Request.Replicate.value_or(0));
  if (!Outcome)
    return errorResponse(Request.Id, ErrorKind::Evaluation,
                         Outcome.message());
  ServiceResponse Response;
  Response.Id = Request.Id;
  Response.Ok = true;
  Response.ResultJson = renderFaultsResult(*Outcome);
  return Response;
}
