//===- service/Protocol.h - Scenario-service wire protocol ------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `skatsim-service-v1` JSONL protocol (docs/SERVICE.md). Requests
/// arrive one JSON object per line and are strict-parsed like fault
/// scenarios: unknown keys are hard errors, so typos surface as
/// structured error responses instead of silently evaluating the wrong
/// what-if. The response stream opens with a header line, carries one
/// `service_response` line per request (in submission order), and closes
/// with a `service_summary` whose counts `tools/check_trace` reconciles
/// against the stream.
///
/// Result payloads render doubles at %.17g so a response round-trips
/// bit-identically against the one-shot CLI evaluation it mirrors — the
/// equivalence contract the service tests assert.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SERVICE_PROTOCOL_H
#define RCS_SERVICE_PROTOCOL_H

#include "support/Status.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rcs {
namespace service {

/// Identifies both the request and response framing of this protocol.
inline constexpr const char *SchemaName = "skatsim-service-v1";

/// What a request asks the daemon to evaluate.
enum class RequestKind {
  Steady,    ///< One steady-state module solve (mirrors `skatsim solve`).
  Transient, ///< A transient run (mirrors `skatsim transient`).
  Faults,    ///< One fault-scenario run (mirrors `skatsim faults run`).
};

const char *requestKindName(RequestKind Kind);

/// One parsed scenario request. Optional fields fall back to the same
/// defaults the CLI paths use, or to the ServeConfig setpoint overrides.
struct ServiceRequest {
  std::string Id;
  RequestKind Kind = RequestKind::Steady;
  /// Design name for steady/transient requests (core::designModuleByName).
  std::string Design;
  /// Scenario file path for faults requests.
  std::string ScenarioPath;
  std::optional<double> AmbientC;  ///< Steady: room air, C.
  std::optional<double> WaterC;    ///< Steady/transient: water inlet, C.
  std::optional<double> WaterLpm;  ///< Steady: water flow, l/min.
  std::optional<double> Util;      ///< Steady: utilization override.
  std::optional<double> Clock;     ///< Steady: clock-fraction override.
  std::optional<double> Hours;     ///< Transient/faults horizon, h.
  std::optional<double> DtS;       ///< Transient: integration step, s.
  std::optional<double> PumpFailH; ///< Transient: pump failure time, h.
  std::optional<uint64_t> Replicate; ///< Faults: hazard RNG stream.
  std::optional<uint64_t> Seed;      ///< Faults: scenario seed override.
  std::optional<double> TimeoutS;  ///< Per-request queue+run deadline, s.
};

/// Strict-parses one request line. Errors name the offending key.
Expected<ServiceRequest> parseServiceRequest(std::string_view Line);

/// Where a structured error response originated.
enum class ErrorKind {
  None,
  Parse,     ///< The request line failed strict parsing.
  QueueFull, ///< Rejected by backpressure before entering the queue.
  Timeout,   ///< Deadline expired while queued (never evaluated).
  Evaluation ///< The solver/scenario evaluation itself failed.
};

const char *errorKindName(ErrorKind Kind);

/// One response line. Exactly one of ResultJson (Ok) or Error (!Ok) is
/// populated; ResultJson is a rendered JSON object.
struct ServiceResponse {
  std::string Id;
  bool Ok = false;
  ErrorKind Error = ErrorKind::None;
  std::string ErrorMessage;
  /// "warm" (cache hit), "cold" (cache miss, entry built), or "bypass"
  /// (uncacheable kind or caching disabled).
  std::string CacheState = "bypass";
  double LatencyS = 0.0;
  std::string ResultJson;
};

/// Stream totals for the closing summary line.
struct ServiceSummary {
  uint64_t Requests = 0;
  uint64_t OkCount = 0;
  uint64_t ErrorCount = 0;
  uint64_t Rejected = 0;
  uint64_t TimedOut = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
};

/// The stream-opening header line (schema marker check_trace keys on).
std::string renderServiceHeader();

/// Renders one response line (no trailing newline).
std::string renderServiceResponse(const ServiceResponse &Response);

/// Renders the closing summary line (no trailing newline).
std::string renderServiceSummary(const ServiceSummary &Summary);

/// Renders a double at %.17g (bit round-trip) for result payloads.
std::string renderExactNumber(double Value);

} // namespace service
} // namespace rcs

#endif // RCS_SERVICE_PROTOCOL_H
