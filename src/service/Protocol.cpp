//===- service/Protocol.cpp - Scenario-service wire protocol ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "support/StringUtils.h"
#include "telemetry/Json.h"

#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::service;
using telemetry::JsonValue;

const char *rcs::service::requestKindName(RequestKind Kind) {
  switch (Kind) {
  case RequestKind::Steady:
    return "steady";
  case RequestKind::Transient:
    return "transient";
  case RequestKind::Faults:
    return "faults";
  }
  assert(false && "unknown request kind");
  return "?";
}

const char *rcs::service::errorKindName(ErrorKind Kind) {
  switch (Kind) {
  case ErrorKind::None:
    return "none";
  case ErrorKind::Parse:
    return "parse";
  case ErrorKind::QueueFull:
    return "queue_full";
  case ErrorKind::Timeout:
    return "timeout";
  case ErrorKind::Evaluation:
    return "evaluation";
  }
  assert(false && "unknown error kind");
  return "?";
}

namespace {

Expected<double> asNumber(const JsonValue &Value, const std::string &Key) {
  if (!Value.isNumber())
    return Expected<double>::error("request: '" + Key +
                                   "' must be a number");
  return Value.NumberValue;
}

Expected<std::string> asString(const JsonValue &Value,
                               const std::string &Key) {
  if (!Value.isString())
    return Expected<std::string>::error("request: '" + Key +
                                        "' must be a string");
  return Value.StringValue;
}

Expected<uint64_t> asIndex(const JsonValue &Value, const std::string &Key) {
  auto V = asNumber(Value, Key);
  if (!V)
    return Expected<uint64_t>::error(V.message());
  if (*V < 0.0 || *V != std::floor(*V))
    return Expected<uint64_t>::error("request: '" + Key +
                                     "' must be a non-negative integer");
  return static_cast<uint64_t>(*V);
}

} // namespace

Expected<ServiceRequest>
rcs::service::parseServiceRequest(std::string_view Line) {
  Expected<JsonValue> Doc = telemetry::parseJson(Line);
  if (!Doc)
    return Expected<ServiceRequest>::error("request: " + Doc.message());
  if (!Doc->isObject())
    return Expected<ServiceRequest>::error(
        "request: each line must be a JSON object");

  ServiceRequest Request;
  bool HaveKind = false;
  bool HaveType = false;
  for (const auto &[Key, Value] : Doc->Members) {
    if (Key == "kind") {
      auto V = asString(Value, Key);
      if (!V)
        return V.status();
      if (*V != "service_request")
        return Expected<ServiceRequest>::error(
            "request: 'kind' must be \"service_request\"");
      HaveKind = true;
    } else if (Key == "id") {
      auto V = asString(Value, Key);
      if (!V)
        return V.status();
      Request.Id = *V;
    } else if (Key == "type") {
      auto V = asString(Value, Key);
      if (!V)
        return V.status();
      std::string Type = toLower(*V);
      if (Type == "steady")
        Request.Kind = RequestKind::Steady;
      else if (Type == "transient")
        Request.Kind = RequestKind::Transient;
      else if (Type == "faults")
        Request.Kind = RequestKind::Faults;
      else
        return Expected<ServiceRequest>::error(
            "request: unknown type '" + *V +
            "' (steady, transient or faults)");
      HaveType = true;
    } else if (Key == "design") {
      auto V = asString(Value, Key);
      if (!V)
        return V.status();
      Request.Design = *V;
    } else if (Key == "scenario") {
      auto V = asString(Value, Key);
      if (!V)
        return V.status();
      Request.ScenarioPath = *V;
    } else if (Key == "ambient_c") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Request.AmbientC = *V;
    } else if (Key == "water_c") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Request.WaterC = *V;
    } else if (Key == "water_lpm") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Request.WaterLpm = *V;
    } else if (Key == "util") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Request.Util = *V;
    } else if (Key == "clock") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Request.Clock = *V;
    } else if (Key == "hours") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      if (*V <= 0.0)
        return Expected<ServiceRequest>::error(
            "request: 'hours' must be positive");
      Request.Hours = *V;
    } else if (Key == "dt_s") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      if (*V <= 0.0)
        return Expected<ServiceRequest>::error(
            "request: 'dt_s' must be positive");
      Request.DtS = *V;
    } else if (Key == "pump_fail_h") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Request.PumpFailH = *V;
    } else if (Key == "replicate") {
      auto V = asIndex(Value, Key);
      if (!V)
        return V.status();
      Request.Replicate = *V;
    } else if (Key == "seed") {
      auto V = asIndex(Value, Key);
      if (!V)
        return V.status();
      Request.Seed = *V;
    } else if (Key == "timeout_s") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      if (*V < 0.0)
        return Expected<ServiceRequest>::error(
            "request: 'timeout_s' must be non-negative");
      Request.TimeoutS = *V;
    } else {
      return Expected<ServiceRequest>::error("request: unknown key '" +
                                             Key + "'");
    }
  }

  if (!HaveKind)
    return Expected<ServiceRequest>::error(
        "request: missing 'kind': \"service_request\"");
  if (!HaveType)
    return Expected<ServiceRequest>::error("request: missing 'type'");
  if (Request.Id.empty())
    return Expected<ServiceRequest>::error(
        "request: missing or empty 'id'");
  switch (Request.Kind) {
  case RequestKind::Steady:
  case RequestKind::Transient:
    if (Request.Design.empty())
      return Expected<ServiceRequest>::error(
          "request: steady/transient requests need a 'design'");
    break;
  case RequestKind::Faults:
    if (Request.ScenarioPath.empty())
      return Expected<ServiceRequest>::error(
          "request: faults requests need a 'scenario' path");
    break;
  }
  return Request;
}

std::string rcs::service::renderExactNumber(double Value) {
  if (!std::isfinite(Value))
    return "null";
  return formatString("%.17g", Value);
}

std::string rcs::service::renderServiceHeader() {
  return formatString("{\"kind\": \"service_header\", \"schema\": \"%s\", "
                      "\"version\": 1}",
                      SchemaName);
}

std::string
rcs::service::renderServiceResponse(const ServiceResponse &Response) {
  std::string Line = formatString(
      "{\"kind\": \"service_response\", \"id\": %s, \"ok\": %s",
      telemetry::jsonQuote(Response.Id).c_str(),
      Response.Ok ? "true" : "false");
  if (Response.Ok) {
    Line += ", \"cache\": " + telemetry::jsonQuote(Response.CacheState);
    Line += ", \"latency_s\": " + telemetry::jsonNumber(Response.LatencyS);
    Line += ", \"result\": " + Response.ResultJson;
  } else {
    Line += formatString(", \"error_kind\": \"%s\"",
                         errorKindName(Response.Error));
    Line += ", \"error\": " + telemetry::jsonQuote(Response.ErrorMessage);
  }
  Line += "}";
  return Line;
}

std::string
rcs::service::renderServiceSummary(const ServiceSummary &Summary) {
  return formatString(
      "{\"kind\": \"service_summary\", \"requests\": %llu, \"ok\": %llu, "
      "\"errors\": %llu, \"rejected\": %llu, \"timed_out\": %llu, "
      "\"cache_hits\": %llu, \"cache_misses\": %llu}",
      static_cast<unsigned long long>(Summary.Requests),
      static_cast<unsigned long long>(Summary.OkCount),
      static_cast<unsigned long long>(Summary.ErrorCount),
      static_cast<unsigned long long>(Summary.Rejected),
      static_cast<unsigned long long>(Summary.TimedOut),
      static_cast<unsigned long long>(Summary.CacheHits),
      static_cast<unsigned long long>(Summary.CacheMisses));
}
