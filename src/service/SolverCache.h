//===- service/SolverCache.h - Shared keyed solver-cache registry -*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PR 5 solver caches (keyed LU factors in thermal::ThermalNetwork,
/// uniform-grid fluid property tables) are per-object: they die with the
/// simulator that built them. This registry lifts them to the service
/// layer: warmed sim::TransientSolverAssets are kept alive keyed on
/// (plant-config hash, dt) so concurrent requests sharing a plant
/// configuration hit warm factors instead of paying cold-start per query.
///
/// Because a thermal network must not be solved from two threads at once,
/// entries are handed out under exclusive move-only Leases. A second
/// request hitting a leased key builds a private detached entry (counted
/// as contention) rather than blocking the worker. Idle entries are
/// bounded by an LRU cap; invalidation marks leased entries stale so they
/// are discarded on release instead of being reinserted.
///
/// All shared state is RCS_GUARDED_BY-annotated (docs/STATIC_ANALYSIS.md
/// §4); entry construction runs outside the lock.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SERVICE_SOLVERCACHE_H
#define RCS_SERVICE_SOLVERCACHE_H

#include "sim/SolverAssets.h"
#include "sim/Transient.h"
#include "support/Status.h"
#include "support/ThreadSafety.h"
#include "system/Module.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace rcs {
namespace service {

/// Cache key: a canonical hash of the plant configuration plus the
/// integration step (LU factors are keyed on exact dt downstream).
struct SolverCacheKey {
  uint64_t ConfigHash = 0;
  /// Transient integration step, s; 0 for steady-only entries.
  double DtS = 0.0;
};

bool operator==(const SolverCacheKey &A, const SolverCacheKey &B);

/// FNV-1a over the fields of \p Module and the asset-shaping tunables of
/// \p Sim that change solver state (capacitance anchors, property-cache
/// toggle). Two configs hashing equal must produce interchangeable
/// assets.
uint64_t hashPlantConfig(const rcsystem::ModuleConfig &Module,
                         const sim::TransientConfig &Sim);

/// What one cache entry keeps warm for its plant configuration.
struct PlantCacheEntry {
  rcsystem::ModuleConfig Module;
  sim::TransientConfig SimConfig;
  /// Warmed transient assets; null for steady-only entries.
  std::unique_ptr<sim::TransientSolverAssets> Assets;
};

/// Counters for telemetry and tests. Hit rate = Hits / (Hits + Misses).
struct SolverCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Key present but leased out: a detached private entry was built.
  uint64_t Contended = 0;
  uint64_t Evictions = 0;
  uint64_t Invalidations = 0;
  size_t Entries = 0;
};

/// The shared, bounded, keyed cache of warmed plant evaluators.
class SolverCacheRegistry {
public:
  /// \p MaxEntries bounds resident entries (leased + idle); at the bound
  /// the least-recently-used idle entry is evicted to admit a new key.
  explicit SolverCacheRegistry(size_t MaxEntries = 16);
  ~SolverCacheRegistry();
  SolverCacheRegistry(const SolverCacheRegistry &) = delete;
  SolverCacheRegistry &operator=(const SolverCacheRegistry &) = delete;

  /// Builds the entry for a key on a miss. Runs outside the registry
  /// lock; must not call back into the registry.
  using BuildFn = std::function<Expected<PlantCacheEntry>()>;

  /// Exclusive handle to one entry. Returns it to the registry on
  /// destruction (detached/stale entries are discarded instead).
  class Lease {
  public:
    Lease() = default;
    Lease(Lease &&Other) noexcept;
    Lease &operator=(Lease &&Other) noexcept;
    ~Lease();
    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;

    /// True when this lease holds an entry (acquire succeeded).
    explicit operator bool() const { return Entry != nullptr; }
    PlantCacheEntry &entry() { return *Entry; }
    /// True when the entry was already warm (cache hit).
    bool warm() const { return Warm; }

  private:
    friend class SolverCacheRegistry;
    Lease(SolverCacheRegistry *Registry, uint64_t TokenIn,
          std::unique_ptr<PlantCacheEntry> EntryIn, bool WarmIn)
        : Registry(Registry), Token(TokenIn), Owned(std::move(EntryIn)),
          Warm(WarmIn) {
      Entry = Owned.get();
    }
    SolverCacheRegistry *Registry = nullptr;
    /// Unique id of the slot this entry returns to; 0 = detached (a
    /// contention/overflow private build whose entry dies with the
    /// lease).
    uint64_t Token = 0;
    std::unique_ptr<PlantCacheEntry> Owned;
    PlantCacheEntry *Entry = nullptr;
    bool Warm = false;
  };

  /// Returns an exclusive lease on the entry for \p Key, building it
  /// with \p Build on a miss (or when the resident entry is leased out).
  /// Fails only when \p Build fails.
  Expected<Lease> acquire(const SolverCacheKey &Key, const BuildFn &Build);

  /// Drops the entry for \p Key. A leased entry is marked stale and
  /// discarded when its lease returns.
  void invalidate(const SolverCacheKey &Key);

  /// Drops every entry (leased ones on release).
  void invalidateAll();

  SolverCacheStats stats() const;

private:
  struct Slot {
    SolverCacheKey Key;
    /// Process-unique slot id; how a returning lease finds its slot
    /// (indices shift under eviction, and a stale leased slot may
    /// coexist with a fresh slot for the same key).
    uint64_t Token = 0;
    /// Resident entry; null while leased out.
    std::unique_ptr<PlantCacheEntry> Entry;
    bool Leased = false;
    bool Stale = false;
    uint64_t LastUse = 0;
  };

  void release(uint64_t Token, std::unique_ptr<PlantCacheEntry> Entry);
  void recordUseCounters(bool Hit);

  const size_t MaxEntries;
  mutable rcs::Mutex Mu;
  std::vector<std::unique_ptr<Slot>> Slots RCS_GUARDED_BY(Mu);
  uint64_t UseClock RCS_GUARDED_BY(Mu) = 0;
  uint64_t NextToken RCS_GUARDED_BY(Mu) = 0;
  SolverCacheStats Counters RCS_GUARDED_BY(Mu);
};

} // namespace service
} // namespace rcs

#endif // RCS_SERVICE_SOLVERCACHE_H
