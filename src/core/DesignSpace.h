//===- core/DesignSpace.h - Design exploration tools ------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Design-space exploration utilities encoding the paper's engineering
/// method: Section 2's selection criteria for heat sinks and pumps and
/// Section 4's "experimentally improve the heat-sink optimal design" are
/// reproduced as parameter sweeps over the simulation models.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_CORE_DESIGNSPACE_H
#define RCS_CORE_DESIGNSPACE_H

#include "system/Module.h"

#include <vector>

namespace rcs {
namespace core {

/// One evaluated pin-fin sink candidate.
struct SinkCandidate {
  thermal::PinFinGeometry Geometry;
  double ResistanceKPerW = 0.0;   ///< Base-to-oil at the design flow.
  double PressureDropPa = 0.0;    ///< Across the bank at the design flow.
  double MaxJunctionTempC = 0.0;  ///< Solved on the given module.
  double Score = 0.0;             ///< Lower is better.
};

/// Sweep ranges for the pin-fin sink optimization.
struct SinkSweepRanges {
  std::vector<double> PinHeightsM = {0.008, 0.012, 0.016, 0.020};
  std::vector<double> PitchesM = {0.003, 0.004, 0.005};
  std::vector<double> PinDiametersM = {0.001, 0.0015, 0.002};
};

/// Evaluates every sink in the sweep on \p Module (immersion cooling
/// required) and returns candidates sorted best-first.
///
/// The score trades junction temperature against pumping pressure:
/// Score = MaxJunction + PressureWeight * dP. This mirrors the
/// experimental optimization of Section 4 (goal 4).
std::vector<SinkCandidate>
sweepImmersionSinks(const rcsystem::ModuleConfig &Module,
                    const rcsystem::ExternalConditions &Conditions,
                    const SinkSweepRanges &Ranges = SinkSweepRanges(),
                    double PressureWeightCPerPa = 2.0e-4);

/// One evaluated pump sizing.
struct PumpCandidate {
  double RatedFlowM3PerS = 0.0;
  double RatedHeadPa = 0.0;
  double AchievedFlowM3PerS = 0.0;
  double MaxJunctionTempC = 0.0;
  double PumpElectricalW = 0.0;
  double Score = 0.0; ///< Lower is better.
};

/// Sweeps oil-pump sizings on \p Module and returns candidates sorted
/// best-first; the score trades junction temperature against pump power
/// (Section 4 goal 2: "increase the performance of the heat-transfer
/// agent supply pump" - but not beyond what helps).
std::vector<PumpCandidate>
sweepOilPumps(const rcsystem::ModuleConfig &Module,
              const rcsystem::ExternalConditions &Conditions,
              const std::vector<double> &RatedFlowsM3PerS,
              const std::vector<double> &RatedHeadsPa,
              double PowerWeightCPerW = 5.0e-3);

/// Finds the warmest chilled-water setpoint that still keeps every FPGA
/// junction at or below \p JunctionLimitC (energy-saving design helper:
/// warmer water means a cheaper-running chiller). Returns the setpoint in
/// Celsius, searched over [MinC, MaxC] to 0.25 C.
Expected<double>
maxWaterSetpointForJunctionLimit(const rcsystem::ModuleConfig &Module,
                                 const rcsystem::ExternalConditions &Base,
                                 double JunctionLimitC, double MinC = 8.0,
                                 double MaxC = 45.0);

} // namespace core
} // namespace rcs

#endif // RCS_CORE_DESIGNSPACE_H
