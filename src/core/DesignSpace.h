//===- core/DesignSpace.h - Design exploration tools ------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Design-space exploration utilities encoding the paper's engineering
/// method: Section 2's selection criteria for heat sinks and pumps and
/// Section 4's "experimentally improve the heat-sink optimal design" are
/// reproduced as parameter sweeps over the simulation models.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_CORE_DESIGNSPACE_H
#define RCS_CORE_DESIGNSPACE_H

#include "support/Quantity.h"
#include "system/Module.h"

#include <vector>

namespace rcs {
namespace core {

/// One evaluated pin-fin sink candidate.
struct SinkCandidate {
  thermal::PinFinGeometry Geometry;
  double ResistanceKPerW = 0.0;   ///< Base-to-oil at the design flow.
  double PressureDropPa = 0.0;    ///< Across the bank at the design flow.
  double MaxJunctionTempC = 0.0;  ///< Solved on the given module.
  double Score = 0.0;             ///< Lower is better.

  /// Typed mirrors of the dimensioned fields.
  units::KelvinPerWatt resistance() const {
    return units::KelvinPerWatt(ResistanceKPerW);
  }
  units::Pascal pressureDrop() const {
    return units::Pascal(PressureDropPa);
  }
  units::Celsius maxJunctionTemp() const {
    return units::Celsius(MaxJunctionTempC);
  }
};

/// Sweep ranges for the pin-fin sink optimization.
struct SinkSweepRanges {
  std::vector<double> PinHeightsM = {0.008, 0.012, 0.016, 0.020};
  std::vector<double> PitchesM = {0.003, 0.004, 0.005};
  std::vector<double> PinDiametersM = {0.001, 0.0015, 0.002};

  /// Typed mirrors: every range entry is a length.
  SinkSweepRanges &setPinHeights(const std::vector<units::Meters> &Heights) {
    PinHeightsM = stripUnits(Heights);
    return *this;
  }
  SinkSweepRanges &setPitches(const std::vector<units::Meters> &Pitches) {
    PitchesM = stripUnits(Pitches);
    return *this;
  }
  SinkSweepRanges &
  setPinDiameters(const std::vector<units::Meters> &Diameters) {
    PinDiametersM = stripUnits(Diameters);
    return *this;
  }
  std::vector<units::Meters> pinHeights() const {
    return addUnits(PinHeightsM);
  }
  std::vector<units::Meters> pitches() const { return addUnits(PitchesM); }
  std::vector<units::Meters> pinDiameters() const {
    return addUnits(PinDiametersM);
  }

private:
  static std::vector<double>
  stripUnits(const std::vector<units::Meters> &Typed) {
    std::vector<double> Raw;
    Raw.reserve(Typed.size());
    for (units::Meters M : Typed)
      Raw.push_back(M.value());
    return Raw;
  }
  static std::vector<units::Meters> addUnits(const std::vector<double> &Raw) {
    std::vector<units::Meters> Typed;
    Typed.reserve(Raw.size());
    for (double M : Raw)
      Typed.push_back(units::Meters(M));
    return Typed;
  }
};

/// Evaluates every sink in the sweep on \p Module (immersion cooling
/// required) and returns candidates sorted best-first.
///
/// The score trades junction temperature against pumping pressure:
/// Score = MaxJunction + PressureWeight * dP. This mirrors the
/// experimental optimization of Section 4 (goal 4).
std::vector<SinkCandidate>
sweepImmersionSinks(const rcsystem::ModuleConfig &Module,
                    const rcsystem::ExternalConditions &Conditions,
                    const SinkSweepRanges &Ranges = SinkSweepRanges(),
                    double PressureWeightCPerPa = 2.0e-4);

/// Typed mirror: the score weight converts pumping pressure into an
/// equivalent junction-temperature penalty, so it carries K/Pa.
inline std::vector<SinkCandidate>
sweepImmersionSinks(const rcsystem::ModuleConfig &Module,
                    const rcsystem::ExternalConditions &Conditions,
                    const SinkSweepRanges &Ranges,
                    units::KelvinPerPascal PressureWeight) {
  return sweepImmersionSinks(Module, Conditions, Ranges,
                             PressureWeight.value());
}

/// One evaluated pump sizing.
struct PumpCandidate {
  double RatedFlowM3PerS = 0.0;
  double RatedHeadPa = 0.0;
  double AchievedFlowM3PerS = 0.0;
  double MaxJunctionTempC = 0.0;
  double PumpElectricalW = 0.0;
  double Score = 0.0; ///< Lower is better.

  /// Typed mirrors of the dimensioned fields.
  units::M3PerS ratedFlow() const { return units::M3PerS(RatedFlowM3PerS); }
  units::Pascal ratedHead() const { return units::Pascal(RatedHeadPa); }
  units::M3PerS achievedFlow() const {
    return units::M3PerS(AchievedFlowM3PerS);
  }
  units::Celsius maxJunctionTemp() const {
    return units::Celsius(MaxJunctionTempC);
  }
  units::Watts pumpElectrical() const {
    return units::Watts(PumpElectricalW);
  }
};

/// Sweeps oil-pump sizings on \p Module and returns candidates sorted
/// best-first; the score trades junction temperature against pump power
/// (Section 4 goal 2: "increase the performance of the heat-transfer
/// agent supply pump" - but not beyond what helps).
std::vector<PumpCandidate>
sweepOilPumps(const rcsystem::ModuleConfig &Module,
              const rcsystem::ExternalConditions &Conditions,
              const std::vector<double> &RatedFlowsM3PerS,
              const std::vector<double> &RatedHeadsPa,
              double PowerWeightCPerW = 5.0e-3);

/// Typed mirror: flows, heads and the power-to-temperature score weight
/// carry their dimensions.
inline std::vector<PumpCandidate>
sweepOilPumps(const rcsystem::ModuleConfig &Module,
              const rcsystem::ExternalConditions &Conditions,
              const std::vector<units::M3PerS> &RatedFlows,
              const std::vector<units::Pascal> &RatedHeads,
              units::KelvinPerWatt PowerWeight =
                  units::KelvinPerWatt(5.0e-3)) {
  std::vector<double> FlowsM3PerS;
  FlowsM3PerS.reserve(RatedFlows.size());
  for (units::M3PerS Flow : RatedFlows)
    FlowsM3PerS.push_back(Flow.value());
  std::vector<double> HeadsPa;
  HeadsPa.reserve(RatedHeads.size());
  for (units::Pascal Head : RatedHeads)
    HeadsPa.push_back(Head.value());
  return sweepOilPumps(Module, Conditions, FlowsM3PerS, HeadsPa,
                       PowerWeight.value());
}

/// Finds the warmest chilled-water setpoint that still keeps every FPGA
/// junction at or below \p JunctionLimitC (energy-saving design helper:
/// warmer water means a cheaper-running chiller). Returns the setpoint in
/// Celsius, searched over [MinC, MaxC] to 0.25 C.
Expected<double>
maxWaterSetpointForJunctionLimit(const rcsystem::ModuleConfig &Module,
                                 const rcsystem::ExternalConditions &Base,
                                 double JunctionLimitC, double MinC = 8.0,
                                 double MaxC = 45.0);

/// Typed mirror: limit, search bounds and result are all absolute
/// temperatures. Errors propagate unchanged.
inline Expected<units::Celsius> maxWaterSetpointForJunctionLimit(
    const rcsystem::ModuleConfig &Module,
    const rcsystem::ExternalConditions &Base, units::Celsius JunctionLimit,
    units::Celsius Min = units::Celsius(8.0),
    units::Celsius Max = units::Celsius(45.0)) {
  Expected<double> Raw = maxWaterSetpointForJunctionLimit(
      Module, Base, JunctionLimit.value(), Min.value(), Max.value());
  if (!Raw)
    return Raw.status();
  return units::Celsius(*Raw);
}

} // namespace core
} // namespace rcs

#endif // RCS_CORE_DESIGNSPACE_H
