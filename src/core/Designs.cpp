//===- core/Designs.cpp - The paper's named systems -----------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Calibration: geometric and flow parameters below were tuned (within
/// physically plausible ranges for the respective hardware generations) so
/// the solved operating points reproduce the paper's reported numbers; see
/// EXPERIMENTS.md for paper-vs-measured values.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"

#include "support/StringUtils.h"

using namespace rcs;
using namespace rcs::core;
using namespace rcs::rcsystem;

Expected<ModuleConfig> rcs::core::designModuleByName(
    const std::string &Name) {
  std::string Key = toLower(Name);
  if (Key == "rigel2")
    return makeRigel2Module();
  if (Key == "taygeta")
    return makeTaygetaModule();
  if (Key == "ultrascale-air")
    return makeUltraScaleAirModule();
  if (Key == "skat")
    return makeSkatModule();
  if (Key == "skat-plus")
    return makeSkatPlusModule();
  if (Key == "skat-plus-naive")
    return makeSkatPlusNaiveModule();
  return Expected<ModuleConfig>::error("unknown design '" + Name +
                                       "'; run 'skatsim list'");
}

ExternalConditions rcs::core::makeNominalConditions() {
  ExternalConditions Conditions;
  Conditions.AmbientAirTempC = 25.0;
  Conditions.WaterInletTempC = 18.0;
  Conditions.WaterFlowM3PerS = 3.0e-4; // ~18 l/min per CM heat exchanger.
  return Conditions;
}

/// The air-cooling plate-fin sink used by the Virtex-6/-7 generations:
/// a 45 mm extrusion constrained to ~20 mm height by board pitch.
static thermal::PlateFinGeometry makeLegacyAirSink() {
  thermal::PlateFinGeometry G;
  G.BaseLengthM = 0.045;
  G.BaseWidthM = 0.045;
  G.BaseThicknessM = 0.005;
  G.FinHeightM = 0.020;
  G.FinThicknessM = 0.0005;
  G.FinCount = 16;
  G.Material = thermal::SinkMaterial::Aluminum;
  return G;
}

/// The taller copper sink assumed for a hypothetical UltraScale air
/// build: vendors improved sinks with every generation, which is why the
/// projected overheat grows only +10..15 C despite doubling chip power.
static thermal::PlateFinGeometry makeImprovedAirSink() {
  thermal::PlateFinGeometry G;
  G.BaseLengthM = 0.050;
  G.BaseWidthM = 0.050;
  G.BaseThicknessM = 0.006;
  G.FinHeightM = 0.028;
  G.FinThicknessM = 0.0004;
  G.FinCount = 24;
  G.Material = thermal::SinkMaterial::Copper;
  return G;
}

/// The SKAT low-height solder-pin immersion sink (paper Section 2).
static thermal::PinFinGeometry makeSkatImmersionSink() {
  thermal::PinFinGeometry G;
  G.BaseLengthM = 0.050;
  G.BaseWidthM = 0.050;
  G.BaseThicknessM = 0.004;
  G.PinDiameterM = 0.0015;
  G.PinHeightM = 0.010;
  G.PitchM = 0.004;
  G.Material = thermal::SinkMaterial::Copper;
  G.TurbulatorFactor = 1.25;
  return G;
}

/// SKAT+ sink: Section 4 goal 1, "increase the effective surface of
/// heat-exchange" - taller pins on a larger 45 mm-package base.
static thermal::PinFinGeometry makeSkatPlusImmersionSink() {
  thermal::PinFinGeometry G = makeSkatImmersionSink();
  G.BaseLengthM = 0.054;
  G.BaseWidthM = 0.054;
  G.PinHeightM = 0.016;
  return G;
}

ModuleConfig rcs::core::makeRigel2Module() {
  ModuleConfig M;
  M.Name = "Rigel-2";
  M.HeightU = 3;
  M.NumCcbs = 4;
  M.Board.Model = fpga::FpgaModel::XC6VLX240T;
  M.Board.NumComputeFpgas = 8;
  M.Board.SeparateControllerFpga = true;
  M.Board.MiscPowerW = 31.0;
  M.Load = fpga::WorkloadPoint{0.90, 1.0};
  M.NumPsus = 1;
  M.PsuRatedPowerW = 2500.0;
  M.Cooling = CoolingKind::ForcedAir;
  M.Air.AirflowM3PerS = 0.36;
  M.Air.FlowAreaM2 = 0.080;
  M.Air.SinkGeometry = makeLegacyAirSink();
  return M;
}

ModuleConfig rcs::core::makeTaygetaModule() {
  ModuleConfig M = makeRigel2Module();
  M.Name = "Taygeta";
  M.Board.Model = fpga::FpgaModel::XC7VX485T;
  M.Board.MiscPowerW = 30.0;
  // Same chassis and sink generation, slightly lower airflow per watt as
  // the denser Virtex-7 boards restrict the duct.
  M.Air.AirflowM3PerS = 0.32;
  return M;
}

ModuleConfig rcs::core::makeUltraScaleAirModule() {
  ModuleConfig M = makeTaygetaModule();
  M.Name = "UltraScale-on-air (projection)";
  M.Board.Model = fpga::FpgaModel::XCKU095;
  M.Board.MiscPowerW = 40.0;
  M.Air.AirflowM3PerS = 0.36;
  M.Air.FlowAreaM2 = 0.085;
  M.Air.SinkGeometry = makeImprovedAirSink();
  return M;
}

ModuleConfig rcs::core::makeSkatModule() {
  ModuleConfig M;
  M.Name = "SKAT";
  M.HeightU = 3;
  M.NumCcbs = 12;
  M.Board.Model = fpga::FpgaModel::XCKU095;
  M.Board.NumComputeFpgas = 8;
  M.Board.SeparateControllerFpga = true;
  M.Board.MiscPowerW = 45.0;
  M.Load = fpga::WorkloadPoint{0.90, 1.0};
  M.NumPsus = 3;
  M.PsuRatedPowerW = 4000.0;
  M.Cooling = CoolingKind::Immersion;
  M.Immersion.CoolantKind =
      ImmersionCoolingConfig::Coolant::EngineeredDielectric;
  M.Immersion.PumpRatedFlowM3PerS = 2.2e-3;
  M.Immersion.PumpRatedHeadPa = 6.0e4;
  M.Immersion.NumPumps = 1;
  M.Immersion.ImmersedPumps = false;
  M.Immersion.BathFlowAreaM2 = 0.042;
  M.Immersion.BathLossCoefficient = 12.0;
  M.Immersion.SinkGeometry = makeSkatImmersionSink();
  M.Immersion.HxUaWPerK = 1600.0;
  M.Immersion.HxOilRatedFlowM3PerS = 2.2e-3;
  M.Immersion.HxOilRatedDropPa = 3.0e4;
  M.Immersion.Tim = ImmersionCoolingConfig::TimKind::SkatInterface;
  M.Immersion.Distribution =
      ImmersionCoolingConfig::OilDistribution::ParallelAcrossBoards;
  return M;
}

ModuleConfig rcs::core::makeSkatPlusModule() {
  ModuleConfig M = makeSkatModule();
  M.Name = "SKAT+";
  M.Board.Model = fpga::FpgaModel::XCVU9P;
  // Section 4: the separate controller FPGA is removed so the 45 mm
  // packages fit the 19" rack; one compute FPGA hosts its functions.
  M.Board.SeparateControllerFpga = false;
  M.Board.MiscPowerW = 50.0;
  // Section 4 goals: higher-performance immersed pumps, larger sink
  // surface, bigger heat exchanger.
  M.Immersion.PumpRatedFlowM3PerS = 3.2e-3;
  M.Immersion.PumpRatedHeadPa = 7.5e4;
  M.Immersion.NumPumps = 2;
  M.Immersion.ImmersedPumps = true;
  M.Immersion.SinkGeometry = makeSkatPlusImmersionSink();
  M.Immersion.HxUaWPerK = 3000.0;
  M.Immersion.HxOilRatedFlowM3PerS = 3.2e-3;
  return M;
}

ModuleConfig rcs::core::makeSkatPlusNaiveModule() {
  ModuleConfig M = makeSkatModule();
  M.Name = "SKAT+ (naive: unmodified cooling)";
  M.Board.Model = fpga::FpgaModel::XCVU9P;
  M.Board.SeparateControllerFpga = false;
  M.Board.MiscPowerW = 50.0;
  // Cooling system deliberately left at SKAT sizing.
  return M;
}

RackConfig rcs::core::makeSkatRack() {
  RackConfig R;
  R.Name = "SKAT 47U rack";
  R.HeightU = 47;
  R.NumModules = 12;
  R.Module = makeSkatModule();
  R.Hydraulics.Layout = hydraulics::ManifoldLayout::ReverseReturn;
  R.Hydraulics.NumLoops = R.NumModules;
  R.Hydraulics.HxRatedFlowM3PerS = 3.0e-4;
  R.Hydraulics.HxRatedDropPa = 2.2e4;
  R.Hydraulics.PumpRatedFlowM3PerS = 4.0e-3;
  R.Hydraulics.PumpRatedHeadPa = 1.4e5;
  R.ChillerSupplyTempC = 18.0;
  R.ChillerRatedDutyW = 130e3;
  return R;
}

RackConfig rcs::core::makeSkatPlusRack() {
  RackConfig R = makeSkatRack();
  R.Name = "SKAT+ 47U rack (projected)";
  R.Module = makeSkatPlusModule();
  // UltraScale+ modules reject somewhat more heat per CM.
  R.Hydraulics.HxRatedFlowM3PerS = 3.5e-4;
  R.Hydraulics.PumpRatedFlowM3PerS = 5.0e-3;
  R.ChillerRatedDutyW = 160e3;
  return R;
}
