//===- core/ConfigIO.cpp - Module config (de)serialization --------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ConfigIO.h"

#include "core/Designs.h"
#include "support/StringUtils.h"
#include "support/Units.h"

#include <cstdio>
#include <functional>
#include <map>

using namespace rcs;
using namespace rcs::core;
using namespace rcs::rcsystem;

namespace {

/// One parsed `key = value` with its location for diagnostics.
struct Entry {
  std::string Section;
  std::string Key;
  std::string Value;
  int Line;
};

Expected<std::vector<Entry>> tokenize(const std::string &Text) {
  std::vector<Entry> Entries;
  std::string Section;
  int LineNo = 0;
  for (const std::string &RawLine : splitString(Text, '\n')) {
    ++LineNo;
    std::string Line = RawLine;
    size_t Comment = Line.find_first_of("#;");
    if (Comment != std::string::npos)
      Line.erase(Comment);
    Line = trimString(Line);
    if (Line.empty())
      continue;
    if (Line.front() == '[') {
      if (Line.back() != ']')
        return Expected<std::vector<Entry>>::error(formatString(
            "line %d: unterminated section header", LineNo));
      Section = toLower(trimString(Line.substr(1, Line.size() - 2)));
      continue;
    }
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return Expected<std::vector<Entry>>::error(
          formatString("line %d: expected 'key = value'", LineNo));
    Entry E;
    E.Section = Section;
    E.Key = toLower(trimString(Line.substr(0, Eq)));
    E.Value = trimString(Line.substr(Eq + 1));
    E.Line = LineNo;
    if (E.Key.empty() || E.Value.empty())
      return Expected<std::vector<Entry>>::error(
          formatString("line %d: empty key or value", LineNo));
    Entries.push_back(std::move(E));
  }
  return Entries;
}

Expected<double> parseNumber(const Entry &E) {
  char *End = nullptr;
  double Value = std::strtod(E.Value.c_str(), &End);
  if (End == E.Value.c_str() || *End != '\0')
    return Expected<double>::error(formatString(
        "line %d: '%s' is not a number", E.Line, E.Value.c_str()));
  return Value;
}

Expected<bool> parseBool(const Entry &E) {
  std::string V = toLower(E.Value);
  if (V == "true" || V == "yes" || V == "1")
    return true;
  if (V == "false" || V == "no" || V == "0")
    return false;
  return Expected<bool>::error(formatString(
      "line %d: '%s' is not a boolean", E.Line, E.Value.c_str()));
}

Status applyEntry(ModuleConfig &Config, const Entry &E) {
  auto Num = [&](double &Field) -> Status {
    Expected<double> Value = parseNumber(E);
    if (!Value)
      return Value.status();
    Field = *Value;
    return Status::ok();
  };
  auto Int = [&](int &Field) -> Status {
    Expected<double> Value = parseNumber(E);
    if (!Value)
      return Value.status();
    Field = static_cast<int>(*Value);
    return Status::ok();
  };
  auto Bool = [&](bool &Field) -> Status {
    Expected<bool> Value = parseBool(E);
    if (!Value)
      return Value.status();
    Field = *Value;
    return Status::ok();
  };
  auto badKey = [&]() {
    return Status::error(formatString("line %d: unknown key '%s' in [%s]",
                                      E.Line, E.Key.c_str(),
                                      E.Section.c_str()));
  };

  if (E.Section == "module") {
    if (E.Key == "base")
      return Status::ok(); // Handled in the first pass.
    if (E.Key == "name") {
      Config.Name = E.Value;
      return Status::ok();
    }
    if (E.Key == "height_u")
      return Int(Config.HeightU);
    if (E.Key == "num_ccbs")
      return Int(Config.NumCcbs);
    if (E.Key == "num_psus")
      return Int(Config.NumPsus);
    if (E.Key == "psu_rated_w")
      return Num(Config.PsuRatedPowerW);
    if (E.Key == "cooling") {
      std::string V = toLower(E.Value);
      if (V == "air")
        Config.Cooling = CoolingKind::ForcedAir;
      else if (V == "coldplate" || V == "cold_plate")
        Config.Cooling = CoolingKind::ColdPlate;
      else if (V == "immersion")
        Config.Cooling = CoolingKind::Immersion;
      else
        return Status::error(formatString(
            "line %d: cooling must be air|coldplate|immersion", E.Line));
      return Status::ok();
    }
    return badKey();
  }

  if (E.Section == "board") {
    if (E.Key == "model") {
      static const std::map<std::string, fpga::FpgaModel> Models = {
          {"xc6vlx240t", fpga::FpgaModel::XC6VLX240T},
          {"xc7vx485t", fpga::FpgaModel::XC7VX485T},
          {"xcku095", fpga::FpgaModel::XCKU095},
          {"xcvu9p", fpga::FpgaModel::XCVU9P},
          {"ultrascale2", fpga::FpgaModel::UltraScale2}};
      auto It = Models.find(toLower(E.Value));
      if (It == Models.end())
        return Status::error(formatString("line %d: unknown FPGA model '%s'",
                                          E.Line, E.Value.c_str()));
      Config.Board.Model = It->second;
      return Status::ok();
    }
    if (E.Key == "num_compute_fpgas")
      return Int(Config.Board.NumComputeFpgas);
    if (E.Key == "separate_controller")
      return Bool(Config.Board.SeparateControllerFpga);
    if (E.Key == "misc_power_w")
      return Num(Config.Board.MiscPowerW);
    return badKey();
  }

  if (E.Section == "load") {
    if (E.Key == "utilization")
      return Num(Config.Load.Utilization);
    if (E.Key == "clock_fraction")
      return Num(Config.Load.ClockFraction);
    return badKey();
  }

  if (E.Section == "immersion") {
    ImmersionCoolingConfig &Immersion = Config.Immersion;
    if (E.Key == "coolant") {
      std::string V = toLower(E.Value);
      if (V == "white")
        Immersion.CoolantKind =
            ImmersionCoolingConfig::Coolant::WhiteMineralOil;
      else if (V == "md45" || V == "md-4.5")
        Immersion.CoolantKind =
            ImmersionCoolingConfig::Coolant::MineralOilMd45;
      else if (V == "engineered" || V == "skat")
        Immersion.CoolantKind =
            ImmersionCoolingConfig::Coolant::EngineeredDielectric;
      else
        return Status::error(formatString(
            "line %d: coolant must be white|md45|engineered", E.Line));
      return Status::ok();
    }
    if (E.Key == "pump_rated_flow_lpm") {
      Expected<double> Value = parseNumber(E);
      if (!Value)
        return Value.status();
      Immersion.PumpRatedFlowM3PerS =
          units::litersPerMinuteToM3PerS(*Value);
      return Status::ok();
    }
    if (E.Key == "pump_rated_head_kpa") {
      Expected<double> Value = parseNumber(E);
      if (!Value)
        return Value.status();
      Immersion.PumpRatedHeadPa = *Value * 1000.0;
      return Status::ok();
    }
    if (E.Key == "num_pumps")
      return Int(Immersion.NumPumps);
    if (E.Key == "immersed_pumps")
      return Bool(Immersion.ImmersedPumps);
    if (E.Key == "bath_flow_area_m2")
      return Num(Immersion.BathFlowAreaM2);
    if (E.Key == "hx_ua_w_per_k")
      return Num(Immersion.HxUaWPerK);
    if (E.Key == "tim") {
      std::string V = toLower(E.Value);
      if (V == "grease")
        Immersion.Tim = ImmersionCoolingConfig::TimKind::SiliconeGrease;
      else if (V == "skat")
        Immersion.Tim = ImmersionCoolingConfig::TimKind::SkatInterface;
      else if (V == "graphite")
        Immersion.Tim = ImmersionCoolingConfig::TimKind::GraphitePad;
      else
        return Status::error(formatString(
            "line %d: tim must be grease|skat|graphite", E.Line));
      return Status::ok();
    }
    if (E.Key == "tim_exposure_h")
      return Num(Immersion.TimExposureHours);
    if (E.Key == "distribution") {
      std::string V = toLower(E.Value);
      if (V == "parallel")
        Immersion.Distribution =
            ImmersionCoolingConfig::OilDistribution::ParallelAcrossBoards;
      else if (V == "series")
        Immersion.Distribution =
            ImmersionCoolingConfig::OilDistribution::SeriesAlongBoards;
      else
        return Status::error(formatString(
            "line %d: distribution must be parallel|series", E.Line));
      return Status::ok();
    }
    return badKey();
  }

  if (E.Section == "air") {
    if (E.Key == "airflow_m3s")
      return Num(Config.Air.AirflowM3PerS);
    if (E.Key == "flow_area_m2")
      return Num(Config.Air.FlowAreaM2);
    if (E.Key == "fan_w_per_m3s")
      return Num(Config.Air.FanSpecificPowerWPerM3PerS);
    return badKey();
  }

  if (E.Section == "coldplate") {
    if (E.Key == "plate_r_k_per_w")
      return Num(Config.ColdPlate.PlateResistanceKPerW);
    if (E.Key == "water_flow_lpm") {
      Expected<double> Value = parseNumber(E);
      if (!Value)
        return Value.status();
      Config.ColdPlate.WaterFlowM3PerS =
          units::litersPerMinuteToM3PerS(*Value);
      return Status::ok();
    }
    if (E.Key == "pump_power_w")
      return Num(Config.ColdPlate.PumpPowerW);
    return badKey();
  }

  return Status::error(formatString("line %d: unknown section [%s]",
                                    E.Line, E.Section.c_str()));
}

} // namespace

Expected<ModuleConfig>
rcs::core::parseModuleConfig(const std::string &Text) {
  Expected<std::vector<Entry>> Entries = tokenize(Text);
  if (!Entries)
    return Expected<ModuleConfig>(Entries.status());

  // First pass: resolve the base design.
  ModuleConfig Config = makeSkatModule();
  for (const Entry &E : *Entries) {
    if (E.Section != "module" || E.Key != "base")
      continue;
    std::string Base = toLower(E.Value);
    if (Base == "rigel2")
      Config = makeRigel2Module();
    else if (Base == "taygeta")
      Config = makeTaygetaModule();
    else if (Base == "ultrascale-air")
      Config = makeUltraScaleAirModule();
    else if (Base == "skat")
      Config = makeSkatModule();
    else if (Base == "skat-plus")
      Config = makeSkatPlusModule();
    else if (Base == "skat-plus-naive")
      Config = makeSkatPlusNaiveModule();
    else
      return Expected<ModuleConfig>::error(formatString(
          "line %d: unknown base design '%s'", E.Line, E.Value.c_str()));
  }

  // Second pass: apply overrides in order.
  for (const Entry &E : *Entries) {
    Status Applied = applyEntry(Config, E);
    if (!Applied.isOk())
      return Expected<ModuleConfig>(Applied);
  }
  return Config;
}

Expected<ModuleConfig>
rcs::core::loadModuleConfigFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "r");
  if (!File)
    return Expected<ModuleConfig>::error("cannot open config file: " +
                                         Path);
  std::string Text;
  char Buffer[4096];
  size_t Read = 0;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Read);
  std::fclose(File);
  return parseModuleConfig(Text);
}

std::string
rcs::core::serializeModuleConfig(const ModuleConfig &Config) {
  std::string Out;
  const char *CoolingName =
      Config.Cooling == CoolingKind::ForcedAir    ? "air"
      : Config.Cooling == CoolingKind::ColdPlate ? "coldplate"
                                                 : "immersion";
  Out += "[module]\n";
  Out += "name = " + Config.Name + "\n";
  Out += formatString("height_u = %d\n", Config.HeightU);
  Out += formatString("num_ccbs = %d\n", Config.NumCcbs);
  Out += formatString("num_psus = %d\n", Config.NumPsus);
  Out += formatString("psu_rated_w = %g\n", Config.PsuRatedPowerW);
  Out += formatString("cooling = %s\n", CoolingName);

  Out += "\n[board]\n";
  static const std::map<fpga::FpgaModel, const char *> ModelNames = {
      {fpga::FpgaModel::XC6VLX240T, "XC6VLX240T"},
      {fpga::FpgaModel::XC7VX485T, "XC7VX485T"},
      {fpga::FpgaModel::XCKU095, "XCKU095"},
      {fpga::FpgaModel::XCVU9P, "XCVU9P"},
      {fpga::FpgaModel::UltraScale2, "UltraScale2"}};
  Out += formatString("model = %s\n", ModelNames.at(Config.Board.Model));
  Out += formatString("num_compute_fpgas = %d\n",
                      Config.Board.NumComputeFpgas);
  Out += formatString("separate_controller = %s\n",
                      Config.Board.SeparateControllerFpga ? "true"
                                                          : "false");
  Out += formatString("misc_power_w = %g\n", Config.Board.MiscPowerW);

  Out += "\n[load]\n";
  Out += formatString("utilization = %g\n", Config.Load.Utilization);
  Out += formatString("clock_fraction = %g\n", Config.Load.ClockFraction);

  const ImmersionCoolingConfig &Immersion = Config.Immersion;
  const char *Coolant =
      Immersion.CoolantKind ==
              ImmersionCoolingConfig::Coolant::WhiteMineralOil
          ? "white"
      : Immersion.CoolantKind ==
              ImmersionCoolingConfig::Coolant::MineralOilMd45
          ? "md45"
          : "engineered";
  const char *Tim =
      Immersion.Tim == ImmersionCoolingConfig::TimKind::SiliconeGrease
          ? "grease"
      : Immersion.Tim == ImmersionCoolingConfig::TimKind::GraphitePad
          ? "graphite"
          : "skat";
  Out += "\n[immersion]\n";
  Out += formatString("coolant = %s\n", Coolant);
  Out += formatString("pump_rated_flow_lpm = %g\n",
                      units::m3PerSToLitersPerMinute(
                          Immersion.PumpRatedFlowM3PerS));
  Out += formatString("pump_rated_head_kpa = %g\n",
                      Immersion.PumpRatedHeadPa / 1000.0);
  Out += formatString("num_pumps = %d\n", Immersion.NumPumps);
  Out += formatString("immersed_pumps = %s\n",
                      Immersion.ImmersedPumps ? "true" : "false");
  Out += formatString("bath_flow_area_m2 = %g\n",
                      Immersion.BathFlowAreaM2);
  Out += formatString("hx_ua_w_per_k = %g\n", Immersion.HxUaWPerK);
  Out += formatString("tim = %s\n", Tim);
  Out += formatString("tim_exposure_h = %g\n",
                      Immersion.TimExposureHours);
  Out += formatString(
      "distribution = %s\n",
      Immersion.Distribution ==
              ImmersionCoolingConfig::OilDistribution::SeriesAlongBoards
          ? "series"
          : "parallel");

  Out += "\n[air]\n";
  Out += formatString("airflow_m3s = %g\n", Config.Air.AirflowM3PerS);
  Out += formatString("flow_area_m2 = %g\n", Config.Air.FlowAreaM2);
  Out += formatString("fan_w_per_m3s = %g\n",
                      Config.Air.FanSpecificPowerWPerM3PerS);

  Out += "\n[coldplate]\n";
  Out += formatString("plate_r_k_per_w = %g\n",
                      Config.ColdPlate.PlateResistanceKPerW);
  Out += formatString("water_flow_lpm = %g\n",
                      units::m3PerSToLitersPerMinute(
                          Config.ColdPlate.WaterFlowM3PerS));
  Out += formatString("pump_power_w = %g\n", Config.ColdPlate.PumpPowerW);
  return Out;
}
