//===- core/Uncertainty.h - Tolerance analysis ------------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monte-Carlo tolerance analysis: how robust is a module's thermal
/// envelope against manufacturing spread and operating drift? Pump curves,
/// heat-exchanger fouling, solder-pin quality, bath geometry, board power
/// and facility water all vary in production; the paper's measured
/// envelope (coolant <= 30 C, junctions <= 55 C) is only credible if it
/// holds across that spread, not just at nominal.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_CORE_UNCERTAINTY_H
#define RCS_CORE_UNCERTAINTY_H

#include "support/Quantity.h"
#include "system/Module.h"

#include <cstdint>

namespace rcs {
namespace core {

/// One-sigma tolerances applied to the sampled parameters. Relative
/// entries are fractions of the nominal; absolute entries are in the
/// quantity's own unit.
struct ToleranceSpec {
  double TurbulatorRel = 0.06;  ///< Solder-pin convection enhancement.
  double PinHeightRel = 0.05;   ///< Sink manufacturing.
  double PumpFlowRel = 0.08;    ///< Pump curve spread.
  double PumpHeadRel = 0.08;
  double HxUaRel = 0.12;        ///< Plate pack tolerance + fouling.
  double BathAreaRel = 0.08;    ///< Assembly clearances.
  double MiscPowerRel = 0.10;   ///< Board infrastructure power.
  double WaterInletAbsC = 1.0;  ///< Facility water regulation.
  double UtilizationAbs = 0.03; ///< Workload placement variation.

  /// Typed mirror of the one dimensioned entry: the water-inlet spread is
  /// a temperature width (one sigma), not an absolute setpoint.
  units::TempDelta waterInletSpread() const {
    return units::TempDelta(WaterInletAbsC);
  }
  ToleranceSpec &setWaterInletSpread(units::TempDelta Spread) {
    WaterInletAbsC = Spread.value();
    return *this;
  }
};

/// Aggregated results of the tolerance sweep.
struct UncertaintyResult {
  int NumSamples = 0;
  int NumFailedSolves = 0;

  double MeanMaxJunctionC = 0.0;
  double StdMaxJunctionC = 0.0;
  double P95MaxJunctionC = 0.0;
  double WorstMaxJunctionC = 0.0;

  double MeanCoolantHotC = 0.0;
  double P95CoolantHotC = 0.0;
  double WorstCoolantHotC = 0.0;

  /// Fraction of samples violating the given limits.
  double OverJunctionLimitFraction = 0.0;
  double OverCoolantLimitFraction = 0.0;

  /// Typed mirrors over the envelope statistics. Means and percentiles of
  /// absolute temperatures are Celsius points; the spread is a delta.
  units::Celsius meanMaxJunction() const {
    return units::Celsius(MeanMaxJunctionC);
  }
  units::TempDelta stdMaxJunction() const {
    return units::TempDelta(StdMaxJunctionC);
  }
  units::Celsius p95MaxJunction() const {
    return units::Celsius(P95MaxJunctionC);
  }
  units::Celsius worstMaxJunction() const {
    return units::Celsius(WorstMaxJunctionC);
  }
  units::Celsius meanCoolantHot() const {
    return units::Celsius(MeanCoolantHotC);
  }
  units::Celsius p95CoolantHot() const {
    return units::Celsius(P95CoolantHotC);
  }
  units::Celsius worstCoolantHot() const {
    return units::Celsius(WorstCoolantHotC);
  }
};

/// Runs the tolerance Monte-Carlo on an immersion module.
///
/// Each sample perturbs the ToleranceSpec parameters with independent
/// normal draws (clamped at +-3 sigma), solves the steady state, and
/// accumulates the envelope statistics against \p JunctionLimitC and
/// \p CoolantLimitC.
UncertaintyResult
analyzeModuleTolerances(const rcsystem::ModuleConfig &Nominal,
                        const rcsystem::ExternalConditions &Conditions,
                        const ToleranceSpec &Tolerances, int NumSamples,
                        uint64_t Seed, double JunctionLimitC = 55.0,
                        double CoolantLimitC = 30.5);

/// Typed mirror: the limits are absolute temperatures, so take them as
/// Celsius points. Same computation, bit-identical result.
inline UncertaintyResult
analyzeModuleTolerances(const rcsystem::ModuleConfig &Nominal,
                        const rcsystem::ExternalConditions &Conditions,
                        const ToleranceSpec &Tolerances, int NumSamples,
                        uint64_t Seed, units::Celsius JunctionLimit,
                        units::Celsius CoolantLimit) {
  return analyzeModuleTolerances(Nominal, Conditions, Tolerances, NumSamples,
                                 Seed, JunctionLimit.value(),
                                 CoolantLimit.value());
}

} // namespace core
} // namespace rcs

#endif // RCS_CORE_UNCERTAINTY_H
