//===- core/Designs.h - The paper's named systems ---------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factory functions for the machines the paper describes, ready to solve:
///
///  - Rigel-2: air-cooled Virtex-6 CM (Section 1; 1255 W, +33.1 C
///    overheat at 25 C ambient).
///  - Taygeta: air-cooled Virtex-7 CM (Section 1; 1661 W, +47.9 C).
///  - "UltraScale on air": the projection Section 1 warns about (+10..15 C
///    over Taygeta, into the 80..85 C band).
///  - SKAT: the immersion-cooled 3U CM of Section 3 (12 CCBs x 8 XCKU095,
///    91 W per FPGA, coolant <= 30 C, junctions <= 55 C).
///  - SKAT+: the Section 4 redesign for 45 mm UltraScale+ parts
///    (controller-less CCBs, immersed pumps, enlarged heat-exchange
///    surface).
///  - The 47U SKAT rack (Section 5; 12 CMs, > 1 PFlops).
///
/// These factories are the library's primary entry points; every bench and
/// example builds on them.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_CORE_DESIGNS_H
#define RCS_CORE_DESIGNS_H

#include "system/Module.h"
#include "system/Rack.h"

namespace rcs {
namespace core {

/// Nominal machine-room boundary conditions used across the experiments:
/// 25 C room, 18 C chilled water.
rcsystem::ExternalConditions makeNominalConditions();

/// Resolves a design name as the CLI and the scenario service spell it
/// ("rigel2", "taygeta", "ultrascale-air", "skat", "skat-plus",
/// "skat-plus-naive"; case-insensitive) to its module configuration.
Expected<rcsystem::ModuleConfig> designModuleByName(const std::string &Name);

/// The air-cooled Virtex-6 computational module (CM Rigel-2).
rcsystem::ModuleConfig makeRigel2Module();

/// The air-cooled Virtex-7 computational module (CM Taygeta).
rcsystem::ModuleConfig makeTaygetaModule();

/// A hypothetical Kintex UltraScale module on (improved) air cooling -
/// the Section 1 projection that motivates immersion.
rcsystem::ModuleConfig makeUltraScaleAirModule();

/// The SKAT immersion CM (Fig. 2): 3U, 12 CCBs x 8 XCKU095, three 4 kW
/// immersion PSUs, MD-4.5 class engineered dielectric.
rcsystem::ModuleConfig makeSkatModule();

/// The SKAT+ prototype (Figs. 3-4): UltraScale+ parts, controller-less
/// CCBs (the 45 mm packages no longer fit otherwise), immersed pumps and
/// an enlarged heat-exchange surface.
rcsystem::ModuleConfig makeSkatPlusModule();

/// A naive SKAT+ variant that keeps the SKAT cooling system unchanged -
/// used to show why the Section 4 modifications are necessary.
rcsystem::ModuleConfig makeSkatPlusNaiveModule();

/// The 47U rack of 12 SKAT CMs with the Fig. 5 reverse-return manifolds.
rcsystem::RackConfig makeSkatRack();

/// The projected SKAT+ rack.
rcsystem::RackConfig makeSkatPlusRack();

} // namespace core
} // namespace rcs

#endif // RCS_CORE_DESIGNS_H
