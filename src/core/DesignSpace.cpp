//===- core/DesignSpace.cpp - Design exploration tools ------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DesignSpace.h"

#include "fluids/Fluid.h"

#include <algorithm>
#include <cassert>

using namespace rcs;
using namespace rcs::core;
using namespace rcs::rcsystem;

std::vector<SinkCandidate>
rcs::core::sweepImmersionSinks(const ModuleConfig &Module,
                               const ExternalConditions &Conditions,
                               const SinkSweepRanges &Ranges,
                               double PressureWeightCPerPa) {
  assert(Module.Cooling == CoolingKind::Immersion &&
         "sink sweep requires an immersion module");
  std::vector<SinkCandidate> Candidates;
  auto Oil = fluids::makeEngineeredDielectric();

  for (double Height : Ranges.PinHeightsM) {
    for (double Pitch : Ranges.PitchesM) {
      for (double Diameter : Ranges.PinDiametersM) {
        if (Pitch <= Diameter + 5e-4)
          continue; // Pins would choke the flow.
        ModuleConfig Candidate = Module;
        Candidate.Immersion.SinkGeometry.PinHeightM = Height;
        Candidate.Immersion.SinkGeometry.PitchM = Pitch;
        Candidate.Immersion.SinkGeometry.PinDiameterM = Diameter;

        ComputationalModule Cm(Candidate);
        Expected<ModuleThermalReport> Report =
            Cm.solveSteadyState(Conditions);
        if (!Report)
          continue;

        thermal::PinFinHeatSink Sink("candidate",
                                     Candidate.Immersion.SinkGeometry);
        thermal::SinkEvaluation Eval = Sink.evaluate(
            *Oil, Report->CoolantColdTempC + 2.0,
            Report->ApproachVelocityMPerS, Report->MeanJunctionTempC);

        SinkCandidate Entry;
        Entry.Geometry = Candidate.Immersion.SinkGeometry;
        Entry.ResistanceKPerW = Eval.ResistanceKPerW;
        Entry.PressureDropPa = Eval.PressureDropPa;
        Entry.MaxJunctionTempC = Report->MaxJunctionTempC;
        Entry.Score = Report->MaxJunctionTempC +
                      PressureWeightCPerPa * Eval.PressureDropPa;
        Candidates.push_back(Entry);
      }
    }
  }
  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [](const SinkCandidate &A, const SinkCandidate &B) {
                     return A.Score < B.Score;
                   });
  return Candidates;
}

std::vector<PumpCandidate>
rcs::core::sweepOilPumps(const ModuleConfig &Module,
                         const ExternalConditions &Conditions,
                         const std::vector<double> &RatedFlowsM3PerS,
                         const std::vector<double> &RatedHeadsPa,
                         double PowerWeightCPerW) {
  assert(Module.Cooling == CoolingKind::Immersion &&
         "pump sweep requires an immersion module");
  std::vector<PumpCandidate> Candidates;
  for (double Flow : RatedFlowsM3PerS) {
    for (double Head : RatedHeadsPa) {
      ModuleConfig Candidate = Module;
      Candidate.Immersion.PumpRatedFlowM3PerS = Flow;
      Candidate.Immersion.PumpRatedHeadPa = Head;
      ComputationalModule Cm(Candidate);
      Expected<ModuleThermalReport> Report =
          Cm.solveSteadyState(Conditions);
      if (!Report)
        continue;
      PumpCandidate Entry;
      Entry.RatedFlowM3PerS = Flow;
      Entry.RatedHeadPa = Head;
      Entry.AchievedFlowM3PerS = Report->CoolantFlowM3PerS;
      Entry.MaxJunctionTempC = Report->MaxJunctionTempC;
      Entry.PumpElectricalW = Report->PumpPowerW;
      Entry.Score = Report->MaxJunctionTempC +
                    PowerWeightCPerW * Report->PumpPowerW;
      Candidates.push_back(Entry);
    }
  }
  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [](const PumpCandidate &A, const PumpCandidate &B) {
                     return A.Score < B.Score;
                   });
  return Candidates;
}

Expected<double> rcs::core::maxWaterSetpointForJunctionLimit(
    const ModuleConfig &Module, const ExternalConditions &Base,
    double JunctionLimitC, double MinC, double MaxC) {
  ComputationalModule Cm(Module);
  auto maxJunctionAt = [&](double SetpointC) -> Expected<double> {
    ExternalConditions Conditions = Base;
    Conditions.WaterInletTempC = SetpointC;
    Expected<ModuleThermalReport> Report = Cm.solveSteadyState(Conditions);
    if (!Report)
      return Expected<double>(Report.status());
    return Report->MaxJunctionTempC;
  };

  Expected<double> AtMin = maxJunctionAt(MinC);
  if (!AtMin)
    return AtMin;
  if (*AtMin > JunctionLimitC)
    return Expected<double>::error(
        "junction limit unreachable even at the coldest setpoint");
  Expected<double> AtMax = maxJunctionAt(MaxC);
  if (AtMax && *AtMax <= JunctionLimitC)
    return MaxC;

  // Bisect on the (monotone) setpoint -> junction map.
  double Lo = MinC, Hi = MaxC;
  while (Hi - Lo > 0.25) {
    double Mid = 0.5 * (Lo + Hi);
    Expected<double> AtMid = maxJunctionAt(Mid);
    if (!AtMid)
      return AtMid;
    if (*AtMid <= JunctionLimitC)
      Lo = Mid;
    else
      Hi = Mid;
  }
  return Lo;
}
