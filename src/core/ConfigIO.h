//===- core/ConfigIO.h - Module config (de)serialization --------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// INI-style serialization for ModuleConfig so experiments can be defined
/// as files instead of code (used by the skatsim CLI's --config flag).
///
/// Format: `[section]` headers with `key = value` lines; `#` and `;` start
/// comments. A `base` key in `[module]` starts from one of the named paper
/// designs, after which any subset of keys may override fields:
///
/// \code
///   [module]
///   base = skat
///   num_ccbs = 16
///
///   [immersion]
///   coolant = md45
///   pump_rated_flow_lpm = 150
/// \endcode
///
/// Unknown sections or keys are errors (typos must not silently produce a
/// different experiment).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_CORE_CONFIGIO_H
#define RCS_CORE_CONFIGIO_H

#include "support/Status.h"
#include "system/Module.h"

#include <string>

namespace rcs {
namespace core {

/// Parses \p Text into a module configuration.
Expected<rcsystem::ModuleConfig> parseModuleConfig(const std::string &Text);

/// Reads and parses the file at \p Path.
Expected<rcsystem::ModuleConfig>
loadModuleConfigFile(const std::string &Path);

/// Serializes \p Config to the INI format (full dump, no `base`).
std::string serializeModuleConfig(const rcsystem::ModuleConfig &Config);

} // namespace core
} // namespace rcs

#endif // RCS_CORE_CONFIGIO_H
