//===- core/Uncertainty.cpp - Tolerance analysis --------------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Uncertainty.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

using namespace rcs;
using namespace rcs::core;
using namespace rcs::rcsystem;

/// Normal draw clamped to +-3 sigma (keeps single outliers from producing
/// unphysical geometry).
static double perturb(RandomEngine &Rng, double Nominal, double RelSigma) {
  double Draw = Rng.normal(0.0, RelSigma);
  Draw = std::clamp(Draw, -3.0 * RelSigma, 3.0 * RelSigma);
  return Nominal * (1.0 + Draw);
}

static double percentile(std::vector<double> Values, double Fraction) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  double Index = Fraction * (Values.size() - 1);
  size_t Lo = static_cast<size_t>(Index);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double T = Index - Lo;
  return Values[Lo] * (1.0 - T) + Values[Hi] * T;
}

UncertaintyResult rcs::core::analyzeModuleTolerances(
    const ModuleConfig &Nominal, const ExternalConditions &Conditions,
    const ToleranceSpec &Tolerances, int NumSamples, uint64_t Seed,
    double JunctionLimitC, double CoolantLimitC) {
  assert(Nominal.Cooling == CoolingKind::Immersion &&
         "tolerance analysis models immersion modules");
  assert(NumSamples > 0 && "need at least one sample");

  RandomEngine Rng(Seed);
  UncertaintyResult Result;
  Result.NumSamples = NumSamples;

  std::vector<double> Junctions, Coolants;
  Junctions.reserve(NumSamples);
  Coolants.reserve(NumSamples);

  for (int Sample = 0; Sample != NumSamples; ++Sample) {
    ModuleConfig Variant = Nominal;
    ImmersionCoolingConfig &Immersion = Variant.Immersion;
    Immersion.SinkGeometry.TurbulatorFactor =
        std::clamp(perturb(Rng, Immersion.SinkGeometry.TurbulatorFactor,
                           Tolerances.TurbulatorRel),
                   1.0, 2.0);
    Immersion.SinkGeometry.PinHeightM =
        perturb(Rng, Immersion.SinkGeometry.PinHeightM,
                Tolerances.PinHeightRel);
    Immersion.PumpRatedFlowM3PerS = perturb(
        Rng, Immersion.PumpRatedFlowM3PerS, Tolerances.PumpFlowRel);
    Immersion.PumpRatedHeadPa =
        perturb(Rng, Immersion.PumpRatedHeadPa, Tolerances.PumpHeadRel);
    Immersion.HxUaWPerK =
        perturb(Rng, Immersion.HxUaWPerK, Tolerances.HxUaRel);
    Immersion.BathFlowAreaM2 =
        perturb(Rng, Immersion.BathFlowAreaM2, Tolerances.BathAreaRel);
    Variant.Board.MiscPowerW =
        perturb(Rng, Variant.Board.MiscPowerW, Tolerances.MiscPowerRel);

    ExternalConditions SampleConditions = Conditions;
    SampleConditions.WaterInletTempC +=
        std::clamp(Rng.normal(0.0, Tolerances.WaterInletAbsC),
                   -3.0 * Tolerances.WaterInletAbsC,
                   3.0 * Tolerances.WaterInletAbsC);
    fpga::WorkloadPoint Load = Variant.Load;
    Load.Utilization = std::clamp(
        Load.Utilization + Rng.normal(0.0, Tolerances.UtilizationAbs), 0.0,
        1.0);

    ComputationalModule Module(Variant);
    Expected<ModuleThermalReport> Report =
        Module.solveSteadyState(SampleConditions, Load);
    if (!Report) {
      ++Result.NumFailedSolves;
      continue;
    }
    Junctions.push_back(Report->MaxJunctionTempC);
    Coolants.push_back(Report->CoolantHotTempC);
  }

  if (Junctions.empty())
    return Result;

  double Sum = 0.0, SumSq = 0.0;
  int OverJunction = 0;
  for (double Tj : Junctions) {
    Sum += Tj;
    SumSq += Tj * Tj;
    OverJunction += Tj > JunctionLimitC;
  }
  double N = static_cast<double>(Junctions.size());
  Result.MeanMaxJunctionC = Sum / N;
  Result.StdMaxJunctionC = std::sqrt(
      std::max(SumSq / N - Result.MeanMaxJunctionC * Result.MeanMaxJunctionC,
               0.0));
  Result.P95MaxJunctionC = percentile(Junctions, 0.95);
  Result.WorstMaxJunctionC =
      *std::max_element(Junctions.begin(), Junctions.end());
  Result.OverJunctionLimitFraction = OverJunction / N;

  double CoolantSum = 0.0;
  int OverCoolant = 0;
  for (double Oil : Coolants) {
    CoolantSum += Oil;
    OverCoolant += Oil > CoolantLimitC;
  }
  Result.MeanCoolantHotC = CoolantSum / N;
  Result.P95CoolantHotC = percentile(Coolants, 0.95);
  Result.WorstCoolantHotC =
      *std::max_element(Coolants.begin(), Coolants.end());
  Result.OverCoolantLimitFraction = OverCoolant / N;
  return Result;
}
