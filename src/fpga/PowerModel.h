//===- fpga/PowerModel.h - FPGA power model ---------------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Power model for one FPGA: dynamic CV^2 f power scaling with utilization
/// and clock fraction plus temperature-dependent static leakage (leakage
/// roughly doubles every 25 C of junction temperature). The leakage
/// feedback is what pushes hot, air-cooled parts toward thermal runaway -
/// the mechanism behind the paper's "air cooling has reached its limit"
/// argument - so the thermal solvers iterate power and temperature to a
/// joint fixed point.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FPGA_POWERMODEL_H
#define RCS_FPGA_POWERMODEL_H

#include "fpga/Device.h"
#include "support/Quantity.h"

namespace rcs {
namespace fpga {

/// Operating point of one FPGA's workload.
struct WorkloadPoint {
  /// Fraction of the device's hardware resource in use (the paper quotes
  /// production workloads of 85..95%).
  double Utilization = 0.90;
  /// Fabric clock relative to nominal.
  double ClockFraction = 1.0;
};

/// Per-device power evaluation.
class FpgaPowerModel {
public:
  explicit FpgaPowerModel(const FpgaSpec &Spec) : Spec(&Spec) {}

  /// Static leakage at junction temperature \p JunctionTempC, W.
  double staticPowerW(double JunctionTempC) const;

  /// Dynamic switching power for \p Load, W (temperature independent).
  double dynamicPowerW(const WorkloadPoint &Load) const;

  /// Total power at the given workload and junction temperature, W.
  double totalPowerW(const WorkloadPoint &Load, double JunctionTempC) const;

  /// Solves the electrothermal fixed point P = total(T), T = TRef + P * R.
  ///
  /// \p ThermalResistanceKPerW is the junction-to-reference resistance and
  /// \p ReferenceTempC the coolant/ambient reference. \returns the
  /// converged junction temperature; diverging leakage (thermal runaway)
  /// returns a temperature beyond MaxJunctionTempC, which callers should
  /// flag.
  double solveJunctionTempC(const WorkloadPoint &Load,
                            double ThermalResistanceKPerW,
                            double ReferenceTempC) const;

  /// Power at the fixed point of solveJunctionTempC.
  double solvePowerW(const WorkloadPoint &Load,
                     double ThermalResistanceKPerW,
                     double ReferenceTempC) const;

  /// \name Dimension-checked evaluators
  /// Typed mirrors of the accessors above (see support/Quantity.h). New
  /// code should prefer these: swapping the resistance and reference
  /// temperature of the fixed-point solvers, or passing a Kelvin where
  /// Celsius is expected, fails to compile. The double forms remain the
  /// escape hatch for solver-internal code.
  /// @{
  units::Watts staticPower(units::Celsius JunctionTemp) const {
    return units::Watts(staticPowerW(JunctionTemp.value()));
  }
  units::Watts dynamicPower(const WorkloadPoint &Load) const {
    return units::Watts(dynamicPowerW(Load));
  }
  units::Watts totalPower(const WorkloadPoint &Load,
                          units::Celsius JunctionTemp) const {
    return units::Watts(totalPowerW(Load, JunctionTemp.value()));
  }
  units::Celsius solveJunctionTemp(const WorkloadPoint &Load,
                                   units::KelvinPerWatt ThermalResistance,
                                   units::Celsius ReferenceTemp) const {
    return units::Celsius(solveJunctionTempC(Load, ThermalResistance.value(),
                                             ReferenceTemp.value()));
  }
  units::Watts solvePower(const WorkloadPoint &Load,
                          units::KelvinPerWatt ThermalResistance,
                          units::Celsius ReferenceTemp) const {
    return units::Watts(solvePowerW(Load, ThermalResistance.value(),
                                    ReferenceTemp.value()));
  }
  /// @}

  const FpgaSpec &spec() const { return *Spec; }

private:
  const FpgaSpec *Spec;
};

} // namespace fpga
} // namespace rcs

#endif // RCS_FPGA_POWERMODEL_H
