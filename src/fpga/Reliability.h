//===- fpga/Reliability.h - Temperature-driven reliability ------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arrhenius reliability model quantifying the paper's argument that
/// junction temperatures above ~70 C "have a negative influence on
/// reliability": wear-out mean-time-to-failure accelerates exponentially
/// with junction temperature.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FPGA_RELIABILITY_H
#define RCS_FPGA_RELIABILITY_H

namespace rcs {
namespace fpga {

/// Parameters of the Arrhenius wear-out model.
struct ReliabilityModel {
  /// Activation energy of the dominant wear-out mechanism, eV
  /// (electromigration / BTI class, 0.7 eV is the common JEDEC choice).
  double ActivationEnergyEv = 0.7;
  /// Reference MTTF at the reference junction temperature, hours.
  double ReferenceMttfHours = 2.0e6;
  double ReferenceJunctionTempC = 55.0;
};

/// Arrhenius acceleration factor of \p HotTempC relative to \p RefTempC
/// (> 1 means failures come sooner at the hot temperature).
double arrheniusAccelerationFactor(double HotTempC, double RefTempC,
                             double ActivationEnergyEv = 0.7);

/// Mean time to failure at \p JunctionTempC under \p Model, hours.
double mttfHours(double JunctionTempC,
                 const ReliabilityModel &Model = ReliabilityModel());

/// Steady failure rate in FIT (failures per 1e9 device-hours).
double failureRateFit(double JunctionTempC,
                      const ReliabilityModel &Model = ReliabilityModel());

/// Expected failures per year for \p DeviceCount devices all running at
/// \p JunctionTempC.
double expectedFailuresPerYear(int DeviceCount, double JunctionTempC,
                               const ReliabilityModel &Model =
                                   ReliabilityModel());

} // namespace fpga
} // namespace rcs

#endif // RCS_FPGA_RELIABILITY_H
