//===- fpga/PowerModel.cpp - FPGA power model --------------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fpga/PowerModel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::fpga;

double FpgaPowerModel::staticPowerW(double JunctionTempC) const {
  // Leakage doubles every 25 C (a standard CMOS rule of thumb).
  return Spec->StaticPower25W * std::exp2((JunctionTempC - 25.0) / 25.0);
}

double FpgaPowerModel::dynamicPowerW(const WorkloadPoint &Load) const {
  assert(Load.Utilization >= 0.0 && Load.Utilization <= 1.0 &&
         "utilization out of range");
  assert(Load.ClockFraction >= 0.0 && Load.ClockFraction <= 1.3 &&
         "clock fraction out of range");
  return Spec->DynamicPowerMaxW * Load.Utilization * Load.ClockFraction;
}

double FpgaPowerModel::totalPowerW(const WorkloadPoint &Load,
                                   double JunctionTempC) const {
  return staticPowerW(JunctionTempC) + dynamicPowerW(Load);
}

double FpgaPowerModel::solveJunctionTempC(const WorkloadPoint &Load,
                                          double ThermalResistanceKPerW,
                                          double ReferenceTempC) const {
  assert(ThermalResistanceKPerW > 0 && "resistance must be positive");
  // Fixed-point iteration with relaxation; the leakage exponential is
  // gentle below runaway so this converges in a handful of steps.
  double Tj = ReferenceTempC + 10.0;
  const double Ceiling = 250.0; // Far beyond silicon limits: runaway flag.
  for (int Iter = 0; Iter != 200; ++Iter) {
    double Power = totalPowerW(Load, Tj);
    double Next = ReferenceTempC + Power * ThermalResistanceKPerW;
    Next = std::min(Next, Ceiling);
    if (std::fabs(Next - Tj) < 1e-9)
      return Next;
    Tj = 0.5 * Tj + 0.5 * Next;
  }
  return Tj;
}

double FpgaPowerModel::solvePowerW(const WorkloadPoint &Load,
                                   double ThermalResistanceKPerW,
                                   double ReferenceTempC) const {
  double Tj =
      solveJunctionTempC(Load, ThermalResistanceKPerW, ReferenceTempC);
  return totalPowerW(Load, Tj);
}
