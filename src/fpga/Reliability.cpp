//===- fpga/Reliability.cpp - Temperature-driven reliability -----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fpga/Reliability.h"

#include "support/Units.h"

#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::fpga;

double rcs::fpga::arrheniusAccelerationFactor(double HotTempC, double RefTempC,
                                        double ActivationEnergyEv) {
  assert(ActivationEnergyEv > 0 && "activation energy must be positive");
  double HotK = units::celsiusToKelvin(HotTempC);
  double RefK = units::celsiusToKelvin(RefTempC);
  return std::exp(ActivationEnergyEv / units::BoltzmannEvPerK *
                  (1.0 / RefK - 1.0 / HotK));
}

double rcs::fpga::mttfHours(double JunctionTempC,
                            const ReliabilityModel &Model) {
  double Acceleration = arrheniusAccelerationFactor(
      JunctionTempC, Model.ReferenceJunctionTempC, Model.ActivationEnergyEv);
  return Model.ReferenceMttfHours / Acceleration;
}

double rcs::fpga::failureRateFit(double JunctionTempC,
                                 const ReliabilityModel &Model) {
  return 1e9 / mttfHours(JunctionTempC, Model);
}

double rcs::fpga::expectedFailuresPerYear(int DeviceCount,
                                          double JunctionTempC,
                                          const ReliabilityModel &Model) {
  assert(DeviceCount >= 0 && "negative device count");
  const double HoursPerYear = 8766.0;
  return DeviceCount * HoursPerYear / mttfHours(JunctionTempC, Model);
}
