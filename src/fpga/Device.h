//===- fpga/Device.h - FPGA device database ---------------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Device models for the FPGA generations the paper tracks: the Virtex-6
/// parts of the Rigel-2 module, the Virtex-7 parts of Taygeta, the Kintex
/// UltraScale XCKU095 of the SKAT module, the UltraScale+ parts planned for
/// SKAT+, and a projected "UltraScale 2" future family the conclusions
/// mention.
///
/// Electrical and thermal parameters are calibrated against the paper's
/// reported operating points (see DESIGN.md): ~33 W per Virtex-6 and ~45 W
/// per Virtex-7 in operating mode, 91 W measured per XCKU095, "up to
/// 100 W" for Virtex UltraScale class parts.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FPGA_DEVICE_H
#define RCS_FPGA_DEVICE_H

#include "support/Quantity.h"

#include <string>

namespace rcs {
namespace fpga {

/// FPGA family generations discussed in the paper.
enum class FpgaFamily {
  Virtex6,        ///< 40 nm (Rigel-2).
  Virtex7,        ///< 28 nm (Taygeta).
  KintexUltraScale, ///< 20 nm (SKAT).
  UltraScalePlus, ///< 16 nm FinFET+ (SKAT+).
  UltraScale2     ///< Projected next generation.
};

/// Concrete device models used across the paper's systems.
enum class FpgaModel {
  XC6VLX240T, ///< Rigel-2 computational FPGA.
  XC7VX485T,  ///< Taygeta computational FPGA.
  XCKU095,    ///< SKAT computational FPGA.
  XCVU9P,     ///< SKAT+ class UltraScale+ FPGA.
  UltraScale2 ///< Projected future part (paper Section 5).
};

/// Static description of one FPGA device.
struct FpgaSpec {
  std::string Name;
  FpgaFamily Family = FpgaFamily::Virtex6;
  int ProcessNm = 40;
  int LogicKCells = 0;
  int DspSlices = 0;
  /// Flip-chip package edge length (the paper: 42.5 mm for UltraScale,
  /// 45 mm for UltraScale+, which forces the CCB redesign).
  double PackageSizeM = 0.0425;
  /// Junction-to-case resistance of the lidded flip-chip package.
  double ThetaJcKPerW = 0.10;
  /// Leakage power at 25 C junction temperature, W.
  double StaticPower25W = 4.0;
  /// Dynamic power at 100% utilization and nominal clock, W.
  double DynamicPowerMaxW = 30.0;
  /// Absolute maximum junction temperature (commercial grade).
  double MaxJunctionTempC = 85.0;
  /// The paper's "permissible temperature of FPGA functioning providing
  /// high reliability during a long operation period".
  double ReliableJunctionTempC = 70.0;
  /// Peak single-precision-equivalent throughput at nominal clock.
  double PeakGflops = 0.0;
  /// Nominal fabric clock in MHz.
  double NominalClockMHz = 200.0;

  /// \name Dimension-checked accessors
  /// Typed mirrors of the raw fields above (see support/Quantity.h);
  /// prefer these in new code so package geometry, resistances, powers
  /// and temperature limits cannot be cross-assigned.
  /// @{
  units::Meters packageSize() const { return units::Meters(PackageSizeM); }
  units::KelvinPerWatt thetaJc() const {
    return units::KelvinPerWatt(ThetaJcKPerW);
  }
  units::Watts staticPower25() const { return units::Watts(StaticPower25W); }
  units::Watts dynamicPowerMax() const {
    return units::Watts(DynamicPowerMaxW);
  }
  units::Celsius maxJunctionTemp() const {
    return units::Celsius(MaxJunctionTempC);
  }
  units::Celsius reliableJunctionTemp() const {
    return units::Celsius(ReliableJunctionTempC);
  }
  /// @}
};

/// Returns the spec for \p Model (database lookup, always succeeds).
const FpgaSpec &getFpgaSpec(FpgaModel Model);

/// Human-readable family name.
const char *familyName(FpgaFamily Family);

/// Returns the model one generation after \p Model (saturates at the
/// newest projected family); used by the family-scaling experiment E3.
FpgaModel nextGeneration(FpgaModel Model);

} // namespace fpga
} // namespace rcs

#endif // RCS_FPGA_DEVICE_H
