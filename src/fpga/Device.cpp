//===- fpga/Device.cpp - FPGA device database --------------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Calibration notes. Per-device electrical parameters are chosen so the
/// simulated operating-mode powers match the paper:
///  - Rigel-2: 1255 W per CM with 32 XC6VLX240T => ~33 W per FPGA plus
///    module infrastructure;
///  - Taygeta: 1661 W per CM with 32 XC7VX485T => ~45 W per FPGA;
///  - SKAT: 91 W measured per XCKU095 (8736 W per CM of 96 FPGAs);
///  - Virtex UltraScale class: "power consumption of up to 100 W";
///  - UltraScale+: "three time increase in computational performance" at
///    similar power (16FinFET process).
/// Peak throughput values reproduce the paper's ratios: SKAT CM is 8.7x a
/// Taygeta CM, and 12 SKAT CMs exceed 1 PFlops per rack.
///
//===----------------------------------------------------------------------===//

#include "fpga/Device.h"

#include <cassert>

using namespace rcs;
using namespace rcs::fpga;

static FpgaSpec makeXc6vlx240t() {
  FpgaSpec S;
  S.Name = "XC6VLX240T-1FFG1759C";
  S.Family = FpgaFamily::Virtex6;
  S.ProcessNm = 40;
  S.LogicKCells = 241;
  S.DspSlices = 768;
  S.PackageSizeM = 0.0425;
  S.ThetaJcKPerW = 0.11;
  S.StaticPower25W = 3.5;
  S.DynamicPowerMaxW = 26.3;
  S.MaxJunctionTempC = 85.0;
  S.ReliableJunctionTempC = 70.0;
  S.PeakGflops = 150.0;
  S.NominalClockMHz = 200.0;
  return S;
}

static FpgaSpec makeXc7vx485t() {
  FpgaSpec S;
  S.Name = "XC7VX485T-1FFG1761C";
  S.Family = FpgaFamily::Virtex7;
  S.ProcessNm = 28;
  S.LogicKCells = 485;
  S.DspSlices = 2800;
  S.PackageSizeM = 0.0425;
  S.ThetaJcKPerW = 0.10;
  S.StaticPower25W = 5.0;
  S.DynamicPowerMaxW = 29.5;
  S.MaxJunctionTempC = 85.0;
  S.ReliableJunctionTempC = 70.0;
  S.PeakGflops = 300.0;
  S.NominalClockMHz = 250.0;
  return S;
}

static FpgaSpec makeXcku095() {
  FpgaSpec S;
  S.Name = "XCKU095";
  S.Family = FpgaFamily::KintexUltraScale;
  S.ProcessNm = 20;
  S.LogicKCells = 940;
  S.DspSlices = 768;
  S.PackageSizeM = 0.0425;
  S.ThetaJcKPerW = 0.09;
  S.StaticPower25W = 6.0;
  S.DynamicPowerMaxW = 90.0;
  S.MaxJunctionTempC = 85.0;
  S.ReliableJunctionTempC = 70.0;
  S.PeakGflops = 870.0;
  S.NominalClockMHz = 350.0;
  return S;
}

static FpgaSpec makeXcvu9p() {
  FpgaSpec S;
  S.Name = "XCVU9P-class UltraScale+";
  S.Family = FpgaFamily::UltraScalePlus;
  S.ProcessNm = 16;
  S.LogicKCells = 2586;
  S.DspSlices = 6840;
  S.PackageSizeM = 0.045; // The 45 mm body that forces the CCB redesign.
  S.ThetaJcKPerW = 0.08;
  S.StaticPower25W = 9.0;
  S.DynamicPowerMaxW = 118.0;
  S.MaxJunctionTempC = 90.0;
  S.ReliableJunctionTempC = 72.0;
  S.PeakGflops = 2610.0; // 3x the XCKU095 per the paper.
  S.NominalClockMHz = 450.0;
  return S;
}

static FpgaSpec makeUltraScale2() {
  FpgaSpec S;
  S.Name = "UltraScale2 (projected)";
  S.Family = FpgaFamily::UltraScale2;
  S.ProcessNm = 7;
  S.LogicKCells = 5200;
  S.DspSlices = 12000;
  S.PackageSizeM = 0.045;
  S.ThetaJcKPerW = 0.07;
  S.StaticPower25W = 10.0;
  S.DynamicPowerMaxW = 110.0;
  S.MaxJunctionTempC = 95.0;
  S.ReliableJunctionTempC = 75.0;
  S.PeakGflops = 5200.0;
  S.NominalClockMHz = 550.0;
  return S;
}

const FpgaSpec &rcs::fpga::getFpgaSpec(FpgaModel Model) {
  static const FpgaSpec V6 = makeXc6vlx240t();
  static const FpgaSpec V7 = makeXc7vx485t();
  static const FpgaSpec Ku = makeXcku095();
  static const FpgaSpec Vu = makeXcvu9p();
  static const FpgaSpec U2 = makeUltraScale2();
  switch (Model) {
  case FpgaModel::XC6VLX240T:
    return V6;
  case FpgaModel::XC7VX485T:
    return V7;
  case FpgaModel::XCKU095:
    return Ku;
  case FpgaModel::XCVU9P:
    return Vu;
  case FpgaModel::UltraScale2:
    return U2;
  }
  assert(false && "unknown FPGA model");
  return V6;
}

const char *rcs::fpga::familyName(FpgaFamily Family) {
  switch (Family) {
  case FpgaFamily::Virtex6:
    return "Virtex-6";
  case FpgaFamily::Virtex7:
    return "Virtex-7";
  case FpgaFamily::KintexUltraScale:
    return "Kintex UltraScale";
  case FpgaFamily::UltraScalePlus:
    return "UltraScale+";
  case FpgaFamily::UltraScale2:
    return "UltraScale 2";
  }
  assert(false && "unknown FPGA family");
  return "?";
}

FpgaModel rcs::fpga::nextGeneration(FpgaModel Model) {
  switch (Model) {
  case FpgaModel::XC6VLX240T:
    return FpgaModel::XC7VX485T;
  case FpgaModel::XC7VX485T:
    return FpgaModel::XCKU095;
  case FpgaModel::XCKU095:
    return FpgaModel::XCVU9P;
  case FpgaModel::XCVU9P:
  case FpgaModel::UltraScale2:
    return FpgaModel::UltraScale2;
  }
  assert(false && "unknown FPGA model");
  return Model;
}
