//===- sim/MonteCarlo.h - Availability simulation ---------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monte-Carlo availability model comparing the cooling technologies on
/// the reliability axis the paper argues from: immersion runs junctions
/// cold (long FPGA life) and has few moving/leaking parts; cold plates add
/// pressure-tight connections and leak/dew-point risk; air runs junctions
/// hot and needs many fans.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SIM_MONTECARLO_H
#define RCS_SIM_MONTECARLO_H

#include <cstdint>
#include <string>
#include <vector>

namespace rcs {
namespace sim {

/// One failure-prone component population inside a module.
struct ComponentSpec {
  std::string Name;
  int Count = 1;
  double MtbfHours = 1e5;
  double RepairHours = 4.0;
  /// True when a failure takes the whole module down until repaired
  /// (vs hot-swappable redundant parts).
  bool TakesDownModule = true;
};

/// Monte-Carlo configuration.
///
/// Each trial draws from its own RNG stream (Seed, trial index), so the
/// report is bit-identical for a given seed regardless of NumThreads or
/// how the scheduler interleaves trials; reduction order is fixed by trial
/// index. The faults sweep runner (faults/Sweep.h) reuses the same
/// seed+stream scheme.
struct AvailabilityConfig {
  std::vector<ComponentSpec> Components;
  double HorizonYears = 5.0;
  int NumTrials = 400;
  uint64_t Seed = 2018;
  /// Worker threads for the trial loop; 1 = serial, <= 0 = all hardware
  /// threads. Results do not depend on this.
  int NumThreads = 1;
};

/// Aggregated availability results.
struct AvailabilityReport {
  double FailuresPerYear = 0.0;
  double ModuleDowntimeHoursPerYear = 0.0;
  double Availability = 1.0; ///< Fraction of time the module is up.
  /// Mean failures/year per component population, parallel to
  /// AvailabilityConfig::Components.
  std::vector<double> PerComponentFailuresPerYear;
};

/// Runs the Monte-Carlo availability simulation.
AvailabilityReport simulateAvailability(const AvailabilityConfig &Config);

/// Component populations of one module per cooling technology, with FPGA
/// wear-out set by the operating junction temperature \p JunctionTempC.
std::vector<ComponentSpec> makeImmersionComponents(int NumFpgas,
                                                   double JunctionTempC,
                                                   int NumPumps,
                                                   bool WashoutProneGrease);
std::vector<ComponentSpec> makeColdPlateComponents(int NumFpgas,
                                                   double JunctionTempC,
                                                   int NumConnections);
std::vector<ComponentSpec> makeAirComponents(int NumFpgas,
                                             double JunctionTempC,
                                             int NumFans);

} // namespace sim
} // namespace rcs

#endif // RCS_SIM_MONTECARLO_H
