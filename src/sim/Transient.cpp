//===- sim/Transient.cpp - Transient module simulator -------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Model structure: two lumped internal nodes (aggregate chip mass and the
/// oil bath) and one boundary (chilled water inlet). The chip->oil
/// conductance comes from the pin-fin sink model at the instantaneous flow;
/// the oil->water conductance is the effectiveness-linearized heat
/// exchanger (duty = eps * Cmin * (T_oil - T_water_in)). Pump speed scales
/// flow by the affinity laws; a stopped pump leaves a small
/// natural-convection trickle.
///
//===----------------------------------------------------------------------===//

#include "sim/Transient.h"

#include "fluids/Fluid.h"
#include "sim/SolverAssets.h"
#include "hydraulics/HeatExchanger.h"
#include "thermal/HeatSink.h"
#include "thermal/Interface.h"
#include "thermal/Network.h"

#include "telemetry/Span.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::sim;
using namespace rcs::rcsystem;

namespace {

/// Module monitoring thresholds with the design flow anchored to the
/// module's own rated pump bank, as the steady solver does.
MonitoringConfig monitoringConfigFor(const ModuleConfig &Module) {
  MonitoringConfig MonitorConfig;
  MonitorConfig.DesignFlowM3PerS =
      Module.Immersion.NumPumps * Module.Immersion.PumpRatedFlowM3PerS;
  return MonitorConfig;
}

} // namespace

TransientSimulator::TransientSimulator(ModuleConfig ModuleIn,
                                       ExternalConditions ConditionsIn,
                                       TransientConfig ConfigIn)
    : Module(std::move(ModuleIn)), Conditions(ConditionsIn),
      Config(ConfigIn),
      Super(monitor::makeModuleSupervisor(monitoringConfigFor(Module),
                                          Config.Supervision)) {
  assert(Module.Cooling == CoolingKind::Immersion &&
         "the transient simulator models immersion modules");
}

void TransientSimulator::enableAudit(const audit::DriftBudgets &Budgets) {
  Auditor = std::make_unique<audit::PhysicsAuditor>(Budgets);
}

const std::vector<std::string> &TransientSimulator::flightChannels() {
  static const std::vector<std::string> Channels = {
      "junction_C", "oil_C",      "power_W",
      "flow_m3s",   "pump_speed", "clock_fraction"};
  return Channels;
}

void TransientSimulator::scheduleWorkload(double TimeS,
                                          fpga::WorkloadPoint Point) {
  Events.push_back({TimeS, Event::Kind::Workload, Point, 0.0});
}

void TransientSimulator::schedulePumpSpeed(double TimeS,
                                           double SpeedFraction) {
  assert(SpeedFraction >= 0.0 && SpeedFraction <= 1.2 &&
         "pump speed out of range");
  Events.push_back(
      {TimeS, Event::Kind::PumpSpeed, fpga::WorkloadPoint{}, SpeedFraction});
}

void TransientSimulator::scheduleWaterInlet(double TimeS, double TempC) {
  Events.push_back(
      {TimeS, Event::Kind::WaterInlet, fpga::WorkloadPoint{}, TempC});
}

void TransientSimulator::scheduleWaterFlow(double TimeS,
                                           double FlowM3PerS) {
  assert(FlowM3PerS >= 0.0 && "negative water flow");
  Events.push_back(
      {TimeS, Event::Kind::WaterFlow, fpga::WorkloadPoint{}, FlowM3PerS});
}

Expected<std::vector<TraceSample>> TransientSimulator::run(double DurationS) {
  assert(DurationS > 0 && "duration must be positive");
  telemetry::Registry &Telemetry = telemetry::Registry::global();
  static telemetry::Counter &RunCount =
      Telemetry.counter("sim.transient.runs");
  static telemetry::Counter &StepCount =
      Telemetry.counter("sim.transient.steps");
  static telemetry::Counter &ActionCount =
      Telemetry.counter("sim.transient.control_actions");
  static telemetry::Counter &DroppedEvents =
      Telemetry.counter("sim.transient.dropped_events");
  telemetry::Span RunSpan(Telemetry, "sim.transient.run");
  RunSpan.attr("duration_s", DurationS);
  RunSpan.attr("dt_s", Config.TimeStepS);
  RunCount.add();

  std::stable_sort(Events.begin(), Events.end(),
                   [](const Event &A, const Event &B) {
                     return A.TimeS < B.TimeS;
                   });

  // Static pieces of the model. The solver-heavy state (fluids with
  // their property caches, the persistent two-node network) lives in
  // TransientSolverAssets so a service can keep it warm across runs; a
  // standalone run builds a private copy, which is the construction this
  // loop used to perform inline.
  Ccb Board(Module.Board);
  const fpga::FpgaSpec &Spec = Board.fpgaSpec();
  fpga::FpgaPowerModel PowerModel(Spec);
  std::unique_ptr<TransientSolverAssets> OwnAssets;
  TransientSolverAssets *Assets = SharedAssets;
  if (!Assets) {
    OwnAssets = std::make_unique<TransientSolverAssets>(Module, Config);
    Assets = OwnAssets.get();
  }
  fluids::Fluid &Oil = Assets->oil();
  fluids::Fluid &Water = Assets->water();
  thermal::PinFinHeatSink Sink("sink", Module.Immersion.SinkGeometry);
  thermal::ThermalInterface Tim =
      Module.Immersion.Tim == ImmersionCoolingConfig::TimKind::SiliconeGrease
          ? thermal::ThermalInterface::makeSiliconeGrease(
                Spec.PackageSizeM * Spec.PackageSizeM)
      : Module.Immersion.Tim == ImmersionCoolingConfig::TimKind::GraphitePad
          ? thermal::ThermalInterface::makeGraphitePad(Spec.PackageSizeM *
                                                       Spec.PackageSizeM)
          : thermal::ThermalInterface::makeSkatInterface(
                Spec.PackageSizeM * Spec.PackageSizeM);
  double TimR = Tim.resistanceKPerW(Module.Immersion.TimExposureHours);

  const int NumFpgas = Module.NumCcbs * Board.computeFpgaCount();
  // Nominal flow from the steady solver's operating point equation: use
  // the rated point as the anchor and scale by pump speed.
  double NominalFlow =
      Module.Immersion.NumPumps * Module.Immersion.PumpRatedFlowM3PerS;

  // Dynamic state.
  fpga::WorkloadPoint Load = Module.Load;
  double PumpSpeed = 1.0;
  double ClockScale = 1.0;
  bool ShutDown = false;
  double WaterInlet = Conditions.WaterInletTempC;
  double WaterFlow = Conditions.WaterFlowM3PerS;

  double FullOilCapacitance = Assets->fullOilCapacitanceJPerK();

  double OilTemp = WaterInlet + 4.0;
  double ChipTemp = OilTemp + 5.0;

  // Persistent two-node network: built once (in the assets), mutated in
  // place each step so the solver's symbolic phase (unknown indexing,
  // pivot order) survives the whole run — and, when the assets are
  // shared, across runs. The temperature-dependent conductances still
  // change every step, so the numeric factorization refreshes, but
  // nothing is re-allocated or re-indexed.
  thermal::ThermalNetwork &Net = Assets->network();
  thermal::NodeId Chips = Assets->chipsNode();
  thermal::NodeId Bath = Assets->bathNode();
  thermal::NodeId WaterNode = Assets->waterBoundaryNode();

  if (Auditor) {
    Auditor->noteFactorCaching(Net.factorCachingEnabled());
    Auditor->noteSparseSolver(Net.sparseSolverEnabled());
    Auditor->setCriticalCallback(
        [this](const std::string &, double BreachTimeS) {
          if (FlightRec)
            FlightRec->trigger("audit budget breach", BreachTimeS);
        });
  }
  std::vector<double> AuditBefore;

  Super.reset();
  std::vector<TraceSample> Trace;
  size_t NextEvent = 0;
  double NextSampleTime = 0.0;
  double NextControlTime = 0.0;
  rcsystem::AlarmLevel LastAlarm = rcsystem::AlarmLevel::Normal;
  rcsystem::ControlAction LastAction = rcsystem::ControlAction::None;

  for (double Time = 0.0; Time <= DurationS; Time += Config.TimeStepS) {
    // One causal span per step: the thermal step and property spans below
    // nest under it, so a profile attributes the whole loop body.
    telemetry::Span StepSpan(Telemetry, "sim.transient.step");
    // Fire due events.
    while (NextEvent < Events.size() && Events[NextEvent].TimeS <= Time) {
      const Event &E = Events[NextEvent];
      switch (E.Kind) {
      case Event::Kind::Workload:
        Load = E.Point;
        break;
      case Event::Kind::PumpSpeed:
        PumpSpeed = E.Value;
        break;
      case Event::Kind::WaterInlet:
        WaterInlet = E.Value;
        break;
      case Event::Kind::WaterFlow:
        WaterFlow = E.Value;
        break;
      }
      ++NextEvent;
    }

    // Plant degradation for this step (healthy defaults without a hook).
    PlantEffects Effects;
    if (PlantModifier)
      PlantModifier(Time, Effects);

    // Flow from pump speed; a stopped pump leaves ~3% natural circulation.
    // Impeller wear scales the delivered speed, blockage throttles the
    // resulting loop flow (natural circulation included: a blocked loop is
    // blocked for buoyant flow too).
    double Flow = std::max(PumpSpeed * Effects.PumpSpeedFactor, 0.03) *
                  NominalFlow * Effects.FlowRestrictionFactor;
    double Velocity = Flow / Module.Immersion.BathFlowAreaM2;

    // Effective workload after control actions.
    fpga::WorkloadPoint Effective = Load;
    Effective.ClockFraction *= ClockScale;
    if (ShutDown) {
      Effective.Utilization = 0.0;
      Effective.ClockFraction = 0.0;
    }

    // Chip power and conductances at this instant; one span covers the
    // property-lookup-dominated section so profiles separate it from the
    // linear solve.
    double ChipHeat = 0.0;
    double MiscHeat = 0.0;
    double GChipOil = 0.0;
    double GOilWater = 3.0; // W/K casing loss with the facility loop down.
    {
      telemetry::Span PropertySpan(Telemetry, "sim.transient.properties");
      double PerFpga = PowerModel.totalPowerW(Effective, ChipTemp);
      ChipHeat = NumFpgas * PerFpga;
      MiscHeat = Module.NumCcbs * Module.Board.MiscPowerW *
                     (ShutDown ? 0.1 : 1.0) +
                 Effects.ExtraHeatW;

      double SinkR = Sink.thermalResistanceKPerW(Oil, OilTemp, Velocity,
                                                 ChipTemp);
      double PerFpgaR = Spec.ThetaJcKPerW + TimR + SinkR;
      GChipOil = NumFpgas / PerFpgaR;

      double COil = Flow * Oil.densityKgPerM3(OilTemp) *
                    Oil.specificHeatJPerKgK(OilTemp);
      double CWater = hydraulics::PlateHeatExchanger::capacityRateWPerK(
          Water, WaterFlow, WaterInlet);
      if (COil > 0.0 && CWater > 0.0) {
        double CMin = std::min(COil, CWater);
        double CMax = std::max(COil, CWater);
        double Cr = CMin / CMax;
        double Ntu = Module.Immersion.HxUaWPerK * Effects.HxUaFactor / CMin;
        double Eps = std::fabs(1.0 - Cr) < 1e-9
                         ? Ntu / (1.0 + Ntu)
                         : (1.0 - std::exp(-Ntu * (1.0 - Cr))) /
                               (1.0 - Cr * std::exp(-Ntu * (1.0 - Cr)));
        GOilWater = Eps * CMin;
      }
    }

    // One implicit step of the two-node network. Coolant loss shows up as
    // reduced bath thermal mass (faster excursions), floored so the node
    // stays well-conditioned.
    double OilCapacitance =
        FullOilCapacitance * std::max(Effects.CoolantInventoryFactor, 0.05);
    Net.setConductance(Chips, Bath, GChipOil);
    Net.setConductance(Bath, WaterNode, GOilWater);
    Net.setCapacitance(Bath, OilCapacitance);
    Net.setHeatSource(Chips, ChipHeat);
    Net.setHeatSource(Bath, MiscHeat);
    Net.setBoundaryTemp(WaterNode, WaterInlet);
    std::vector<double> State = {ChipTemp, OilTemp, WaterInlet};
    if (Auditor)
      AuditBefore = State;
    Status StepStatus = Net.stepTransient(State, Config.TimeStepS);
    if (!StepStatus.isOk())
      return Expected<std::vector<TraceSample>>(
          Status::error("transient step failed: " + StepStatus.message()));
    ChipTemp = State[Chips];
    OilTemp = State[Bath];

    if (Auditor) {
      audit::EnergyClosure Closure = Auditor->recordThermalStep(
          Net, AuditBefore, State, Config.TimeStepS);
      StepSpan.attr("audit_residual_w", Closure.ResidualW);
      StepSpan.attr("audit_fraction", Closure.Fraction);
    }

    StepCount.add();
    if (Telemetry.tracingEnabled())
      Telemetry.emitEvent("sim.transient.step",
                          {{"t_s", Time},
                           {"junction_C", ChipTemp},
                           {"oil_C", OilTemp},
                           {"power_W", ChipHeat + MiscHeat},
                           {"flow_m3s", Flow},
                           {"pump_speed", PumpSpeed},
                           {"clock_fraction", ClockScale}});

    if (FlightRec) {
      double Frame[6] = {ChipTemp, OilTemp,   ChipHeat + MiscHeat,
                         Flow,     PumpSpeed, ClockScale};
      FlightRec->record(Time, Frame, 6);
    }

    // Control loop: the controller consumes the debounced, hysteresis-
    // qualified alarm bank rather than raw threshold classifications.
    if (Time >= NextControlTime) {
      telemetry::Span ControlSpan(Telemetry, "sim.transient.control");
      NextControlTime += Config.ControlPeriodS;
      double Readings[3] = {OilTemp, ChipTemp, Flow};
      if (SensorTransform)
        SensorTransform(Time, Readings, 3);
      monitor::SupervisoryReport Report = Super.update(Time, Readings, 3);
      if (Auditor)
        Auditor->updateAlarms(Time);
      ControlAction Action = ControlPolicy
                                 ? ControlPolicy(Time, Report)
                                 : monitor::recommendModuleAction(Report);
      LastAlarm = Report.Worst;
      LastAction = Action;
      if (FlightRec && Report.Worst == AlarmLevel::Critical)
        FlightRec->trigger("critical alarm", Time);
      if (Action != ControlAction::None)
        ActionCount.add();
      if (Telemetry.tracingEnabled())
        Telemetry.emitEvent("sim.transient.control",
                            {{"t_s", Time},
                             {"alarm", alarmLevelName(Report.Worst)},
                             {"action", controlActionName(Action)},
                             {"shut_down", ShutDown}});
      if (Config.ApplyControlActions && !ShutDown) {
        switch (Action) {
        case ControlAction::None:
          break;
        case ControlAction::RaisePumpSpeed:
          if (PumpSpeed > 0.0)
            PumpSpeed = std::min(PumpSpeed + 0.1, 1.2);
          break;
        case ControlAction::ReduceClock:
          ClockScale = std::max(0.5, ClockScale - 0.1);
          break;
        case ControlAction::Shutdown:
          ShutDown = true;
          break;
        }
      }
    }

    // Record.
    if (Time >= NextSampleTime) {
      NextSampleTime += Config.SampleIntervalS;
      TraceSample Sample;
      Sample.TimeS = Time;
      Sample.MaxJunctionTempC = ChipTemp;
      Sample.OilTempC = OilTemp;
      Sample.TotalPowerW = ChipHeat + MiscHeat;
      Sample.OilFlowM3PerS = Flow;
      Sample.PumpSpeedFraction = PumpSpeed;
      Sample.ClockFraction = ClockScale;
      Sample.Alarm = LastAlarm;
      Sample.Action = LastAction;
      Sample.ShutDown = ShutDown;
      Trace.push_back(Sample);
      if (SampleCallback)
        SampleCallback(Trace.back());
      if (Auditor)
        Auditor->emitStreamRecord(Time);
    }
  }

  // Flush a partial post-trigger tail if the run ended mid-window.
  if (FlightRec)
    (void)FlightRec->finalize();

  // Events scheduled past the horizon never fired. Surface the miss as a
  // warning counter (and a trace event) instead of dropping it silently.
  if (NextEvent < Events.size()) {
    uint64_t Dropped = Events.size() - NextEvent;
    DroppedEvents.add(Dropped);
    if (Telemetry.tracingEnabled())
      Telemetry.emitEvent(
          "sim.transient.dropped_events",
          {{"count", static_cast<long long>(Dropped)},
           {"first_scheduled_t_s", Events[NextEvent].TimeS},
           {"duration_s", DurationS}});
  }
  return Trace;
}
