//===- sim/RackTransient.cpp - Rack-level transient simulation ----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Per step: every module's chip and oil nodes advance one implicit-Euler
/// step against the shared water temperature (treated as a boundary within
/// the step), then the water inventory integrates the sum of module duties
/// minus whatever the chiller extracts (gain-limited and capacity-capped).
/// Operator splitting at this time scale (seconds against minutes-to-hours
/// loop dynamics) is well inside the stability margin of the implicit
/// inner step.
///
//===----------------------------------------------------------------------===//

#include "sim/RackTransient.h"

#include "fluids/Fluid.h"
#include "hydraulics/HeatExchanger.h"
#include "thermal/HeatSink.h"
#include "thermal/Interface.h"
#include "thermal/Network.h"

#include "telemetry/Span.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::sim;
using namespace rcs::rcsystem;

RackTransientSimulator::RackTransientSimulator(RackConfig RackIn,
                                               double AmbientTempCIn,
                                               RackTransientConfig ConfigIn)
    : Rack(std::move(RackIn)), AmbientTempC(AmbientTempCIn),
      Config(ConfigIn),
      Super(monitor::makeRackSupervisor(
          Config.WaterWarnTempC, Config.WaterCriticalTempC,
          Config.JunctionWarnTempC, Config.ProtectionTripC,
          Config.Supervision)) {
  assert(Rack.Module.Cooling == CoolingKind::Immersion &&
         "the rack transient simulator models immersion modules");
}

void RackTransientSimulator::enableAudit(const audit::DriftBudgets &Budgets) {
  Auditor = std::make_unique<audit::PhysicsAuditor>(Budgets);
}

const std::vector<std::string> &RackTransientSimulator::flightChannels() {
  static const std::vector<std::string> Channels = {
      "water_C",  "mean_oil_C", "max_junction_C",
      "power_W",  "chiller_W",  "modules_down"};
  return Channels;
}

void RackTransientSimulator::scheduleChillerCapacity(double TimeS,
                                                     double Fraction) {
  assert(Fraction >= 0.0 && Fraction <= 1.0 && "fraction out of range");
  Events.push_back(
      {TimeS, Event::Kind::ChillerCapacity, Fraction, fpga::WorkloadPoint{}});
}

void RackTransientSimulator::scheduleWorkload(double TimeS,
                                              fpga::WorkloadPoint Point) {
  Events.push_back({TimeS, Event::Kind::Workload, 0.0, Point});
}

Expected<std::vector<RackTraceSample>>
RackTransientSimulator::run(double DurationS) {
  assert(DurationS > 0 && "duration must be positive");
  telemetry::Registry &Telemetry = telemetry::Registry::global();
  static telemetry::Counter &RunCount =
      Telemetry.counter("sim.rack_transient.runs");
  static telemetry::Counter &StepCount =
      Telemetry.counter("sim.rack_transient.steps");
  static telemetry::Counter &TripCount =
      Telemetry.counter("sim.rack_transient.protection_trips");
  static telemetry::Counter &DroppedEvents =
      Telemetry.counter("sim.rack_transient.dropped_events");
  telemetry::Span RunSpan(Telemetry, "sim.rack_transient.run");
  RunSpan.attr("duration_s", DurationS);
  RunSpan.attr("dt_s", Config.TimeStepS);
  RunSpan.attr("modules", Rack.NumModules);
  RunCount.add();

  std::stable_sort(Events.begin(), Events.end(),
                   [](const Event &A, const Event &B) {
                     return A.TimeS < B.TimeS;
                   });

  const ModuleConfig &Module = Rack.Module;
  Ccb Board(Module.Board);
  const fpga::FpgaSpec &Spec = Board.fpgaSpec();
  fpga::FpgaPowerModel PowerModel(Spec);
  auto Oil = fluids::makeEngineeredDielectric();
  auto Water = fluids::makeWater();
  thermal::PinFinHeatSink Sink("sink", Module.Immersion.SinkGeometry);
  double TimR = thermal::ThermalInterface::makeSkatInterface(
                    Spec.PackageSizeM * Spec.PackageSizeM)
                    .resistanceKPerW(Module.Immersion.TimExposureHours);

  const int NumModules = Rack.NumModules;
  const int FpgasPerModule = Module.NumCcbs * Board.computeFpgaCount();
  double OilFlow =
      Module.Immersion.NumPumps * Module.Immersion.PumpRatedFlowM3PerS;
  double WaterFlowPerModule = Rack.Hydraulics.HxRatedFlowM3PerS;

  double ChipCapacitance =
      FpgasPerModule * Config.ChipCapacitancePerFpgaJPerK;
  double OilCapacitance = Config.OilVolumePerModuleM3 *
                          Oil->volumetricHeatCapacityJPerM3K(35.0);
  double WaterCapacitance =
      Config.WaterInventoryM3 *
      Water->volumetricHeatCapacityJPerM3K(Rack.ChillerSupplyTempC + 2.0);

  // Dynamic state.
  fpga::WorkloadPoint Load = Module.Load;
  double ChillerFraction = 1.0;
  double WaterTemp = Rack.ChillerSupplyTempC;
  std::vector<double> ChipTemp(NumModules, WaterTemp + 8.0);
  std::vector<double> OilTemp(NumModules, WaterTemp + 4.0);
  std::vector<bool> ShutDown(NumModules, false);
  // Applied external-policy commands (identity without a policy).
  RackControlCommands Commands;
  Commands.ClockScale.assign(NumModules, 1.0);
  Commands.UtilizationScale.assign(NumModules, 1.0);
  Commands.ForceShutdown.assign(NumModules, false);

  if (Config.UseFluidPropertyCache) {
    Oil->enablePropertyCache();
    Water->enablePropertyCache();
  }

  // One persistent network serves every module: all modules share the same
  // four-node structure and capacitances, so only conductances, heat
  // sources and boundary temperatures are rewritten per module-step. The
  // solver's symbolic phase (unknown indexing, pivot order) is computed
  // once for the whole run.
  thermal::ThermalNetwork Net;
  thermal::NodeId Chips = Net.addNode("chips", ChipCapacitance);
  thermal::NodeId Bath = Net.addNode("oil", OilCapacitance);
  thermal::NodeId WaterNode = Net.addBoundaryNode("water", WaterTemp);
  thermal::NodeId Room = Net.addBoundaryNode("room", AmbientTempC);
  Net.addConductance(Chips, Bath, 1.0);
  Net.addConductance(Bath, WaterNode, 1.0);
  // Casing loss: a warm module leaks a little heat to the room.
  Net.addConductance(Bath, Room, 6.0);
  Net.addHeatSource(Chips, 0.0);
  Net.addHeatSource(Bath, 0.0);

  // Per-module factor lookup tolerating empty/short effect vectors.
  auto FactorAt = [](const std::vector<double> &Factors, int I) {
    return static_cast<size_t>(I) < Factors.size() ? Factors[I] : 1.0;
  };
  auto HeatAt = [](const std::vector<double> &HeatW, int I) {
    return static_cast<size_t>(I) < HeatW.size() ? HeatW[I] : 0.0;
  };

  if (Auditor) {
    Auditor->noteFactorCaching(Net.factorCachingEnabled());
    Auditor->noteSparseSolver(Net.sparseSolverEnabled());
    Auditor->setCriticalCallback([this](const std::string &,
                                        double BreachTimeS) {
      if (FlightRec)
        FlightRec->trigger("audit budget breach", BreachTimeS);
    });
  }
  std::vector<double> AuditBefore;

  Super.reset();
  std::vector<RackTraceSample> Trace;
  size_t NextEvent = 0;
  double NextSampleTime = 0.0;
  double NextControlTime = 0.0;

  for (double Time = 0.0; Time <= DurationS; Time += Config.TimeStepS) {
    // One causal span per step; the per-module physics span and each
    // module's thermal step nest under it.
    telemetry::Span StepSpan(Telemetry, "sim.rack_transient.step");
    while (NextEvent < Events.size() && Events[NextEvent].TimeS <= Time) {
      const Event &E = Events[NextEvent];
      if (E.Kind == Event::Kind::ChillerCapacity)
        ChillerFraction = E.Value;
      else
        Load = E.Point;
      ++NextEvent;
    }

    // Plant degradation for this step (healthy defaults without a hook).
    RackPlantEffects Effects;
    if (PlantModifier)
      PlantModifier(Time, Effects);

    double TotalDuty = 0.0;
    double ImplicitDuty = 0.0;
    double TotalPower = 0.0;
    double MaxJunction = -1e9;
    double ThroughputSum = 0.0;
    double StepMaxAuditFraction = 0.0;
    int DownCount = 0;
    for (int I = 0; I != NumModules; ++I) {
      // A protected module has its supply rails cut: no dynamic power
      // and no leakage either.
      double ChipHeat = 0.0;
      double MiscHeat = 0.0;
      if (ShutDown[I]) {
        ++DownCount;
      } else {
        // Scheduled workload scaled by the applied policy commands.
        // Utilization beyond a module's capacity is lost, not queued.
        fpga::WorkloadPoint Effective = Load;
        double ClockScale =
            std::clamp(Commands.ClockScale[I], 0.0, 1.2);
        double UtilScale = std::max(Commands.UtilizationScale[I], 0.0);
        Effective.ClockFraction = Load.ClockFraction * ClockScale;
        Effective.Utilization =
            std::min(Load.Utilization * UtilScale, 1.0);
        double AppliedUtilScale =
            Load.Utilization > 1e-12
                ? Effective.Utilization / Load.Utilization
                : UtilScale;
        ThroughputSum += ClockScale * AppliedUtilScale;
        ChipHeat =
            FpgasPerModule * PowerModel.totalPowerW(Effective, ChipTemp[I]);
        MiscHeat = Module.NumCcbs * Module.Board.MiscPowerW;
      }
      MiscHeat += HeatAt(Effects.ModuleExtraHeatW, I);
      TotalPower += ChipHeat + MiscHeat;

      // Degraded oil circulation: impeller wear scales the delivered
      // flow, floored at the 3% natural-circulation trickle.
      double ModuleFlow =
          std::max(FactorAt(Effects.ModulePumpFactor, I), 0.03) * OilFlow;
      double ModuleVelocity = ModuleFlow / Module.Immersion.BathFlowAreaM2;

      // Per-module conductance evaluation: property lookups dominate, so
      // a dedicated span separates them from the thermal step below.
      double GChipOil = 0.0;
      double GOilWater = 0.0;
      {
        telemetry::Span PropertySpan(Telemetry,
                                     "sim.rack_transient.properties");
        double SinkR = Sink.thermalResistanceKPerW(
            *Oil, OilTemp[I], ModuleVelocity, ChipTemp[I]);
        GChipOil = FpgasPerModule / (Spec.ThetaJcKPerW + TimR + SinkR);

        double COil = ModuleFlow * Oil->densityKgPerM3(OilTemp[I]) *
                      Oil->specificHeatJPerKgK(OilTemp[I]);
        double CWater = hydraulics::PlateHeatExchanger::capacityRateWPerK(
            *Water, WaterFlowPerModule, WaterTemp);
        double CMin = std::min(COil, CWater);
        double CMax = std::max(COil, CWater);
        double Cr = CMin / CMax;
        double Ntu = Module.Immersion.HxUaWPerK *
                     FactorAt(Effects.ModuleUaFactor, I) / CMin;
        double Eps = std::fabs(1.0 - Cr) < 1e-9
                         ? Ntu / (1.0 + Ntu)
                         : (1.0 - std::exp(-Ntu * (1.0 - Cr))) /
                               (1.0 - Cr * std::exp(-Ntu * (1.0 - Cr)));
        GOilWater = Eps * CMin;
      }
      TotalDuty += GOilWater * (OilTemp[I] - WaterTemp);

      Net.setConductance(Chips, Bath, GChipOil);
      Net.setConductance(Bath, WaterNode, GOilWater);
      Net.setHeatSource(Chips, ChipHeat);
      Net.setHeatSource(Bath, MiscHeat);
      Net.setBoundaryTemp(WaterNode, WaterTemp);
      std::vector<double> State = {ChipTemp[I], OilTemp[I], WaterTemp,
                                   AmbientTempC};
      if (Auditor)
        AuditBefore = State;
      Status StepStatus = Net.stepTransient(State, Config.TimeStepS);
      if (!StepStatus.isOk())
        return Expected<std::vector<RackTraceSample>>(Status::error(
            "rack transient step failed: " + StepStatus.message()));
      ChipTemp[I] = State[Chips];
      OilTemp[I] = State[Bath];
      MaxJunction = std::max(MaxJunction, ChipTemp[I]);
      // What the implicit step actually transported into the shared
      // water boundary this step; the water inventory instead integrates
      // the begin-of-step duty (TotalDuty), so the difference is the
      // operator-splitting coupling drift the auditor tracks.
      ImplicitDuty += GOilWater * (OilTemp[I] - WaterTemp);
      if (Auditor) {
        audit::EnergyClosure Closure = Auditor->recordThermalStep(
            Net, AuditBefore, State, Config.TimeStepS);
        StepMaxAuditFraction =
            std::max(StepMaxAuditFraction, Closure.Fraction);
      }

      if (Config.EnableProtection && !ShutDown[I] &&
          ChipTemp[I] >= Config.ProtectionTripC) {
        ShutDown[I] = true;
        TripCount.add();
        if (FlightRec)
          FlightRec->trigger("protection trip", Time);
        if (Telemetry.tracingEnabled())
          Telemetry.emitEvent("sim.rack_transient.protection_trip",
                              {{"t_s", Time},
                               {"module", I},
                               {"junction_C", ChipTemp[I]}});
      }
    }

    // Rack alarm bank: shared-loop water temperature and the hottest
    // junction, debounced and hysteresis-qualified. Sensor faults distort
    // what the supervisor sees, never the plant itself.
    if (Auditor) {
      Auditor->recordCouplingDrift(TotalDuty - ImplicitDuty, TotalPower);
      StepSpan.attr("audit_max_fraction", StepMaxAuditFraction);
    }

    double Readings[2] = {WaterTemp, MaxJunction};
    if (SensorTransform)
      SensorTransform(Time, Readings, 2);
    monitor::SupervisoryReport Report = Super.update(Time, Readings, 2);
    if (FlightRec && Report.Worst == AlarmLevel::Critical)
      FlightRec->trigger("critical alarm", Time);
    if (Auditor)
      Auditor->updateAlarms(Time);

    // External degradation policy: clock shedding, load migration and
    // staged shutdown, applied from the next step on.
    if (ControlPolicy && Time >= NextControlTime) {
      NextControlTime += Config.ControlPeriodS;
      RackControlState PolicyState;
      PolicyState.TimeS = Time;
      PolicyState.Report = Report;
      PolicyState.JunctionTempC = &ChipTemp;
      PolicyState.OilTempC = &OilTemp;
      PolicyState.ModuleDown = &ShutDown;
      ControlPolicy(PolicyState, Commands);
      Commands.ClockScale.resize(NumModules, 1.0);
      Commands.UtilizationScale.resize(NumModules, 1.0);
      Commands.ForceShutdown.resize(NumModules, false);
      for (int I = 0; I != NumModules; ++I) {
        if (Commands.ForceShutdown[I] && !ShutDown[I]) {
          ShutDown[I] = true;
          if (Telemetry.tracingEnabled())
            Telemetry.emitEvent("sim.rack_transient.commanded_shutdown",
                                {{"t_s", Time}, {"module", I}});
        }
      }
    }

    // Water loop update: module duties in, chiller extraction out. A
    // derating fault composes with scheduled capacity events.
    double ChillerRequest =
        Config.ChillerGainWPerK *
        std::max(WaterTemp - (Rack.ChillerSupplyTempC - 1.0), 0.0);
    double ChillerDuty =
        std::min(ChillerRequest, ChillerFraction *
                                     Effects.ChillerCapacityFactor *
                                     Rack.ChillerRatedDutyW);
    WaterTemp +=
        (TotalDuty - ChillerDuty) / WaterCapacitance * Config.TimeStepS;

    double SumOil = 0.0;
    for (double T : OilTemp)
      SumOil += T;
    double MeanOil = SumOil / NumModules;

    if (FlightRec) {
      double Frame[6] = {WaterTemp,  MeanOil,
                         MaxJunction, TotalPower,
                         ChillerDuty, static_cast<double>(DownCount)};
      FlightRec->record(Time, Frame, 6);
    }

    StepCount.add();
    if (Telemetry.tracingEnabled())
      Telemetry.emitEvent("sim.rack_transient.step",
                          {{"t_s", Time},
                           {"water_C", WaterTemp},
                           {"max_junction_C", MaxJunction},
                           {"power_W", TotalPower},
                           {"chiller_W", ChillerDuty},
                           {"modules_down", DownCount}});

    if (Time >= NextSampleTime) {
      NextSampleTime += Config.SampleIntervalS;
      RackTraceSample Sample;
      Sample.TimeS = Time;
      Sample.WaterTempC = WaterTemp;
      Sample.MeanOilTempC = MeanOil;
      Sample.MaxJunctionTempC = MaxJunction;
      Sample.ChillerDutyW = ChillerDuty;
      Sample.TotalPowerW = TotalPower;
      Sample.ModulesShutDown = DownCount;
      Sample.ThroughputFraction = ThroughputSum / NumModules;
      Sample.Alarm = Report.Worst;
      Trace.push_back(Sample);
      if (SampleCallback)
        SampleCallback(Trace.back());
      if (Auditor)
        Auditor->emitStreamRecord(Time);
    }
  }

  if (FlightRec)
    (void)FlightRec->finalize();

  if (NextEvent < Events.size()) {
    uint64_t Dropped = Events.size() - NextEvent;
    DroppedEvents.add(Dropped);
    if (Telemetry.tracingEnabled())
      Telemetry.emitEvent(
          "sim.rack_transient.dropped_events",
          {{"count", static_cast<long long>(Dropped)},
           {"first_scheduled_t_s", Events[NextEvent].TimeS},
           {"duration_s", DurationS}});
  }
  return Trace;
}
