//===- sim/Transient.h - Transient module simulator -------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-domain simulation of one immersion-cooled computational module:
/// a lumped electro-thermal model (chip mass + oil bath + chilled-water
/// boundary) driven by workload traces and fault events, supervised by the
/// CM monitoring subsystem. This reproduces the paper's heat experiments
/// ("experimental tests of the developed solutions") as simulations:
/// warm-up transients, pump failures, water-supply excursions and the
/// control system's reactions.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SIM_TRANSIENT_H
#define RCS_SIM_TRANSIENT_H

#include "audit/Audit.h"
#include "monitor/FlightRecorder.h"
#include "monitor/Supervisor.h"
#include "support/Status.h"
#include "system/Module.h"
#include "system/Monitoring.h"

#include <functional>
#include <memory>
#include <vector>

namespace rcs {
namespace sim {

class TransientSolverAssets;

/// Tunables of the transient engine.
struct TransientConfig {
  double TimeStepS = 2.0;
  double SampleIntervalS = 10.0;
  /// Period of the monitoring subsystem's control loop.
  double ControlPeriodS = 30.0;
  /// Whether controller actions (pump speed, clock shedding, shutdown)
  /// are applied or merely recorded.
  bool ApplyControlActions = true;
  /// Debounce/hysteresis tuning of the supervisory alarm bank the
  /// controller consumes.
  monitor::SupervisorTuning Supervision;
  /// Lumped heat capacities.
  double ChipCapacitancePerFpgaJPerK = 120.0; ///< Package + sink mass.
  double OilVolumeM3 = 0.20;                  ///< Bath inventory.
  /// Resample fluid property tables onto uniform grids for O(1) lookups
  /// (see fluids::Fluid::enablePropertyCache). Off for an exact-table
  /// ablation run; cached values agree to ~1e-15 relative.
  bool UseFluidPropertyCache = true;
};

/// Multiplicative plant-degradation state applied for one integration step.
///
/// The faults engine rewrites these through setPlantModifier; the defaults
/// are the healthy plant. Factors compose multiplicatively with whatever
/// the controller commands (a degraded pump at commanded speed 1.1 still
/// delivers only 1.1 * PumpSpeedFactor of rated speed).
struct PlantEffects {
  /// Delivered pump speed per commanded speed (impeller wear; 0 = seized).
  double PumpSpeedFactor = 1.0;
  /// Loop flow per delivered pump speed (manifold/valve blockage).
  double FlowRestrictionFactor = 1.0;
  /// Heat-exchanger UA relative to clean (fouling).
  double HxUaFactor = 1.0;
  /// Oil bath inventory relative to full (coolant loss).
  double CoolantInventoryFactor = 1.0;
  /// Additional parasitic heat into the bath (PSU efficiency droop), W.
  double ExtraHeatW = 0.0;
};

/// Rewrites \p Effects for the step at \p TimeS; called once per step.
using PlantModifierFn = std::function<void(double TimeS, PlantEffects &Effects)>;

/// Transforms the raw sensor readings the supervisor will see (drift,
/// stuck-at, dropout, spike). Called on each control period with the
/// physically true values; mutate in place. NaN readings classify Critical
/// downstream (fail-safe), so dropout is modeled as NaN.
using SensorTransformFn =
    std::function<void(double TimeS, double *Values, size_t NumValues)>;

/// Replaces the built-in alarm-to-action policy: receives the debounced
/// supervisory report and returns the action to apply this control period.
using ControlPolicyFn = std::function<rcsystem::ControlAction(
    double TimeS, const monitor::SupervisoryReport &Report)>;

/// One recorded sample of the transient trace.
struct TraceSample {
  double TimeS = 0.0;
  double MaxJunctionTempC = 0.0;
  double OilTempC = 0.0;
  double TotalPowerW = 0.0;
  double OilFlowM3PerS = 0.0;
  double PumpSpeedFraction = 1.0;
  double ClockFraction = 1.0;
  rcsystem::AlarmLevel Alarm = rcsystem::AlarmLevel::Normal;
  rcsystem::ControlAction Action = rcsystem::ControlAction::None;
  bool ShutDown = false;
};

/// Transient simulator for an immersion module.
class TransientSimulator {
public:
  /// \p Module must use immersion cooling.
  TransientSimulator(rcsystem::ModuleConfig Module,
                     rcsystem::ExternalConditions Conditions,
                     TransientConfig Config = TransientConfig());

  /// Schedules a workload change at \p TimeS.
  void scheduleWorkload(double TimeS, fpga::WorkloadPoint Point);

  /// Schedules a pump speed change (0 = failure / stop) at \p TimeS.
  void schedulePumpSpeed(double TimeS, double SpeedFraction);

  /// Schedules a chilled-water inlet temperature change at \p TimeS.
  void scheduleWaterInlet(double TimeS, double TempC);

  /// Schedules a chilled-water flow change at \p TimeS (0 = interruption
  /// of the facility loop; the oil bath then rides on its thermal mass).
  void scheduleWaterFlow(double TimeS, double FlowM3PerS);

  /// Runs the simulation for \p DurationS seconds and returns the trace.
  Expected<std::vector<TraceSample>> run(double DurationS);

  /// The supervisory alarm bank the control loop consumes. Transition
  /// callbacks installed here fire during run().
  monitor::Supervisor &supervisor() { return Super; }

  /// Attaches a non-owning flight recorder; every integration step is
  /// recorded and a Critical alarm triggers the dump. Channel order
  /// matches flightChannels().
  void attachFlightRecorder(monitor::FlightRecorder *Recorder) {
    FlightRec = Recorder;
  }

  /// Invoked for each recorded trace sample during run(); used by the
  /// monitor CLI to stream periodic state without re-walking the trace.
  void setSampleCallback(std::function<void(const TraceSample &)> Callback) {
    SampleCallback = std::move(Callback);
  }

  /// Installs a per-step plant-degradation hook (see PlantEffects).
  void setPlantModifier(PlantModifierFn Modifier) {
    PlantModifier = std::move(Modifier);
  }

  /// Installs a sensor-fault transform applied to the readings the
  /// supervisor consumes; the plant always integrates true state.
  void setSensorTransform(SensorTransformFn Transform) {
    SensorTransform = std::move(Transform);
  }

  /// Replaces recommendModuleAction as the alarm-to-action policy. The
  /// returned action is applied with the built-in actuator model (pump
  /// +0.1 steps to 1.2, clock -0.1 steps to the 0.5 floor, latching
  /// shutdown) when Config.ApplyControlActions is set.
  void setControlPolicy(ControlPolicyFn Policy) {
    ControlPolicy = std::move(Policy);
  }

  /// Enables the physics audit for subsequent run() calls: every
  /// implicit step's energy closure is checked against \p Budgets, the
  /// audit alarm bank is fed each control period, and a Critical budget
  /// breach triggers the attached flight recorder ("audit budget
  /// breach") exactly like a plant trip. Auditing is off by default; the
  /// cost is gated by the `overhead_audit` bench ratio.
  void enableAudit(const audit::DriftBudgets &Budgets =
                       audit::DriftBudgets());

  /// The physics auditor, or nullptr when auditing is disabled. Attach
  /// an `.audit.jsonl` stream or read the summary here after run().
  audit::PhysicsAuditor *auditor() { return Auditor.get(); }
  const audit::PhysicsAuditor *auditor() const { return Auditor.get(); }

  /// Borrows warmed solver assets (fluids with resampled property
  /// caches, the persistent two-node network with its LU factors) built
  /// for this module configuration and TransientConfig, instead of
  /// constructing them inside run(). Results are bit-identical either
  /// way (see sim/SolverAssets.h); the caller keeps ownership, must keep
  /// \p Assets alive across run(), and must not share them with a
  /// concurrently running simulator. Pass nullptr to detach.
  void setSolverAssets(TransientSolverAssets *Assets) {
    SharedAssets = Assets;
  }

  /// Channel names (and order) of flight-recorder frames.
  static const std::vector<std::string> &flightChannels();

private:
  struct Event {
    double TimeS;
    enum class Kind { Workload, PumpSpeed, WaterInlet, WaterFlow } Kind;
    fpga::WorkloadPoint Point;
    double Value = 0.0;
  };

  rcsystem::ModuleConfig Module;
  rcsystem::ExternalConditions Conditions;
  TransientConfig Config;
  std::vector<Event> Events;
  monitor::Supervisor Super;
  TransientSolverAssets *SharedAssets = nullptr;
  monitor::FlightRecorder *FlightRec = nullptr;
  std::unique_ptr<audit::PhysicsAuditor> Auditor;
  std::function<void(const TraceSample &)> SampleCallback;
  PlantModifierFn PlantModifier;
  SensorTransformFn SensorTransform;
  ControlPolicyFn ControlPolicy;
};

} // namespace sim
} // namespace rcs

#endif // RCS_SIM_TRANSIENT_H
