//===- sim/SolverAssets.h - Reusable warmed solver state --------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Warmed solver state a TransientSimulator run needs and that is worth
/// keeping alive between runs sharing one plant configuration: the bath
/// and facility-water fluid objects (with their uniform-grid property
/// caches already resampled) and the persistent two-node thermal network
/// whose symbolic indexing and keyed LU factors survive across runs.
///
/// A run that borrows assets produces bit-identical results to one that
/// builds them fresh: every network quantity the step loop touches
/// (conductances, bath capacitance, heat sources, boundary temperature)
/// is rewritten each step before the solve, and the capacitance anchors
/// are computed from the exact property tables here, before the property
/// cache is enabled — the same order TransientSimulator::run used when it
/// owned this construction.
///
/// Assets are NOT thread-safe: the thermal network must not be solved
/// from two threads at once. The service layer's SolverCacheRegistry
/// hands them out under exclusive leases; single-threaded callers just
/// construct one per simulator (or let run() build its own).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SIM_SOLVERASSETS_H
#define RCS_SIM_SOLVERASSETS_H

#include "fluids/Fluid.h"
#include "sim/Transient.h"
#include "thermal/Network.h"

#include <memory>

namespace rcs {
namespace sim {

/// The per-plant warm state shared across transient runs: fluids with
/// resampled property caches plus the chips/bath/water network.
class TransientSolverAssets {
public:
  /// Builds the assets for \p Module under the engine tunables in
  /// \p Config (capacitance anchors and the property-cache toggle).
  /// \p Module must use immersion cooling.
  TransientSolverAssets(const rcsystem::ModuleConfig &Module,
                        const TransientConfig &Config);

  fluids::Fluid &oil() { return *Oil; }
  fluids::Fluid &water() { return *Water; }
  thermal::ThermalNetwork &network() { return Net; }

  thermal::NodeId chipsNode() const { return Chips; }
  thermal::NodeId bathNode() const { return Bath; }
  thermal::NodeId waterBoundaryNode() const { return WaterBoundary; }

  /// Aggregate chip-mass capacitance (all FPGAs), J/K.
  double chipCapacitanceJPerK() const { return ChipCapacitanceJPerK; }

  /// Full-inventory bath capacitance from the exact (uncached) oil
  /// tables, J/K; coolant-loss effects scale it per step.
  double fullOilCapacitanceJPerK() const { return FullOilCapacitanceJPerK; }

private:
  std::unique_ptr<fluids::Fluid> Oil;
  std::unique_ptr<fluids::Fluid> Water;
  thermal::ThermalNetwork Net;
  thermal::NodeId Chips = 0;
  thermal::NodeId Bath = 0;
  thermal::NodeId WaterBoundary = 0;
  double ChipCapacitanceJPerK = 0.0;
  double FullOilCapacitanceJPerK = 0.0;
};

} // namespace sim
} // namespace rcs

#endif // RCS_SIM_SOLVERASSETS_H
