//===- sim/RackTransient.h - Rack-level transient simulation ----*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-domain simulation of a whole rack: every computational module's
/// chip mass and oil bath, the shared chilled-water loop inventory, and a
/// capacity-limited chiller regulating the water temperature. Extends the
/// single-module TransientSimulator to the scenarios only a rack can
/// show: a chiller outage heating the shared loop, staggered module
/// protection trips, and recovery after repair.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SIM_RACKTRANSIENT_H
#define RCS_SIM_RACKTRANSIENT_H

#include "monitor/FlightRecorder.h"
#include "monitor/Supervisor.h"
#include "support/Status.h"
#include "system/Rack.h"

#include <functional>
#include <vector>

namespace rcs {
namespace sim {

/// Tunables of the rack transient engine.
struct RackTransientConfig {
  double TimeStepS = 5.0;
  double SampleIntervalS = 30.0;
  /// Chilled-water loop inventory (pipes + manifolds + buffer tank).
  double WaterInventoryM3 = 0.6;
  /// Chiller regulation gain: heat extracted per kelvin the loop sits
  /// above the setpoint, capped at the rated duty.
  double ChillerGainWPerK = 8.0e4;
  /// Oil inventory per module.
  double OilVolumePerModuleM3 = 0.20;
  double ChipCapacitancePerFpgaJPerK = 120.0;
  /// Junction temperature at which a module's protection latches it off.
  double ProtectionTripC = 85.0;
  bool EnableProtection = true;
  /// Supervisory alarm thresholds on the shared loop and hottest module.
  double WaterWarnTempC = 28.0;
  double WaterCriticalTempC = 38.0;
  double JunctionWarnTempC = 70.0;
  /// Debounce/hysteresis tuning of the rack alarm bank.
  monitor::SupervisorTuning Supervision;
};

/// One recorded rack-level sample.
struct RackTraceSample {
  double TimeS = 0.0;
  double WaterTempC = 0.0;
  double MeanOilTempC = 0.0;
  double MaxJunctionTempC = 0.0;
  double ChillerDutyW = 0.0;
  double TotalPowerW = 0.0;
  int ModulesShutDown = 0;
  /// Worst debounced alarm across the rack alarm bank at sample time.
  rcsystem::AlarmLevel Alarm = rcsystem::AlarmLevel::Normal;
};

/// Transient simulator for a rack of immersion modules.
class RackTransientSimulator {
public:
  /// \p Rack must use immersion modules.
  RackTransientSimulator(rcsystem::RackConfig Rack, double AmbientTempC,
                         RackTransientConfig Config = RackTransientConfig());

  /// Schedules a chiller capacity change at \p TimeS; \p Fraction of the
  /// rated duty (0 = outage, 1 = healthy).
  void scheduleChillerCapacity(double TimeS, double Fraction);

  /// Schedules a rack-wide workload change at \p TimeS.
  void scheduleWorkload(double TimeS, fpga::WorkloadPoint Point);

  /// Runs the simulation and returns the rack trace.
  Expected<std::vector<RackTraceSample>> run(double DurationS);

  /// The rack-level alarm bank (shared-loop water, hottest junction).
  monitor::Supervisor &supervisor() { return Super; }

  /// Attaches a non-owning flight recorder; every step is recorded and
  /// the first protection trip (or Critical alarm) triggers the dump.
  /// Channel order matches flightChannels().
  void attachFlightRecorder(monitor::FlightRecorder *Recorder) {
    FlightRec = Recorder;
  }

  /// Invoked for each recorded rack trace sample during run().
  void setSampleCallback(
      std::function<void(const RackTraceSample &)> Callback) {
    SampleCallback = std::move(Callback);
  }

  /// Channel names (and order) of flight-recorder frames.
  static const std::vector<std::string> &flightChannels();

private:
  struct Event {
    double TimeS;
    enum class Kind { ChillerCapacity, Workload } Kind;
    double Value = 0.0;
    fpga::WorkloadPoint Point;
  };

  rcsystem::RackConfig Rack;
  double AmbientTempC;
  RackTransientConfig Config;
  std::vector<Event> Events;
  monitor::Supervisor Super;
  monitor::FlightRecorder *FlightRec = nullptr;
  std::function<void(const RackTraceSample &)> SampleCallback;
};

} // namespace sim
} // namespace rcs

#endif // RCS_SIM_RACKTRANSIENT_H
