//===- sim/RackTransient.h - Rack-level transient simulation ----*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-domain simulation of a whole rack: every computational module's
/// chip mass and oil bath, the shared chilled-water loop inventory, and a
/// capacity-limited chiller regulating the water temperature. Extends the
/// single-module TransientSimulator to the scenarios only a rack can
/// show: a chiller outage heating the shared loop, staggered module
/// protection trips, and recovery after repair.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SIM_RACKTRANSIENT_H
#define RCS_SIM_RACKTRANSIENT_H

#include "audit/Audit.h"
#include "monitor/FlightRecorder.h"
#include "monitor/Supervisor.h"
#include "sim/Transient.h"
#include "support/Status.h"
#include "system/Rack.h"

#include <functional>
#include <memory>
#include <vector>

namespace rcs {
namespace sim {

/// Per-module plant degradation plus rack-shared chiller derating for one
/// integration step. Vectors may be left empty (healthy) or sized to the
/// module count; the faults engine rewrites them through
/// setPlantModifier.
struct RackPlantEffects {
  /// Chiller capacity relative to rated, composed with scheduled
  /// chiller-capacity events (derating fault x outage event).
  double ChillerCapacityFactor = 1.0;
  /// Per-module delivered oil-pump speed factor (empty = all healthy).
  std::vector<double> ModulePumpFactor;
  /// Per-module heat-exchanger UA factor relative to clean.
  std::vector<double> ModuleUaFactor;
  /// Per-module extra parasitic heat into the bath (PSU droop), W.
  std::vector<double> ModuleExtraHeatW;
};

/// Rewrites \p Effects for the step at \p TimeS; called once per step.
using RackPlantModifierFn =
    std::function<void(double TimeS, RackPlantEffects &Effects)>;

/// Rack state handed to an external control policy each control period.
/// Pointer members refer to simulator-owned state valid for the call only.
struct RackControlState {
  double TimeS = 0.0;
  /// Debounced rack alarm bank report (water temp, hottest junction).
  monitor::SupervisoryReport Report;
  const std::vector<double> *JunctionTempC = nullptr;
  const std::vector<double> *OilTempC = nullptr;
  const std::vector<bool> *ModuleDown = nullptr;
};

/// Per-module commands an external policy returns. Scales are relative to
/// the scheduled rack workload: clock scale is clamped to [0, 1.2],
/// utilization scale is clamped so effective utilization never exceeds 1
/// (migrated work beyond a module's capacity is lost, not queued).
/// ForceShutdown latches a module off exactly like a protection trip.
struct RackControlCommands {
  std::vector<double> ClockScale;
  std::vector<double> UtilizationScale;
  std::vector<bool> ForceShutdown;
};

/// Inspects \p State and appends/overwrites \p Commands (sized to the
/// module count, initialized to the currently applied commands).
using RackControlPolicyFn = std::function<void(const RackControlState &State,
                                               RackControlCommands &Commands)>;

/// Tunables of the rack transient engine.
struct RackTransientConfig {
  double TimeStepS = 5.0;
  double SampleIntervalS = 30.0;
  /// Chilled-water loop inventory (pipes + manifolds + buffer tank).
  double WaterInventoryM3 = 0.6;
  /// Chiller regulation gain: heat extracted per kelvin the loop sits
  /// above the setpoint, capped at the rated duty.
  double ChillerGainWPerK = 8.0e4;
  /// Oil inventory per module.
  double OilVolumePerModuleM3 = 0.20;
  double ChipCapacitancePerFpgaJPerK = 120.0;
  /// Junction temperature at which a module's protection latches it off.
  double ProtectionTripC = 85.0;
  bool EnableProtection = true;
  /// Supervisory alarm thresholds on the shared loop and hottest module.
  double WaterWarnTempC = 28.0;
  double WaterCriticalTempC = 38.0;
  double JunctionWarnTempC = 70.0;
  /// Debounce/hysteresis tuning of the rack alarm bank.
  monitor::SupervisorTuning Supervision;
  /// Period of the external control policy loop (setControlPolicy).
  double ControlPeriodS = 60.0;
  /// Resample fluid property tables onto uniform grids for O(1) lookups
  /// (see fluids::Fluid::enablePropertyCache). Off for an exact-table
  /// ablation run; cached values agree to ~1e-15 relative.
  bool UseFluidPropertyCache = true;
};

/// One recorded rack-level sample.
struct RackTraceSample {
  double TimeS = 0.0;
  double WaterTempC = 0.0;
  double MeanOilTempC = 0.0;
  double MaxJunctionTempC = 0.0;
  double ChillerDutyW = 0.0;
  double TotalPowerW = 0.0;
  int ModulesShutDown = 0;
  /// Work actually executed relative to the scheduled rack workload:
  /// mean over modules of clock x utilization scaling, zero for modules
  /// that are down. 1.0 = full throughput retained.
  double ThroughputFraction = 1.0;
  /// Worst debounced alarm across the rack alarm bank at sample time.
  rcsystem::AlarmLevel Alarm = rcsystem::AlarmLevel::Normal;
};

/// Transient simulator for a rack of immersion modules.
class RackTransientSimulator {
public:
  /// \p Rack must use immersion modules.
  RackTransientSimulator(rcsystem::RackConfig Rack, double AmbientTempC,
                         RackTransientConfig Config = RackTransientConfig());

  /// Schedules a chiller capacity change at \p TimeS; \p Fraction of the
  /// rated duty (0 = outage, 1 = healthy).
  void scheduleChillerCapacity(double TimeS, double Fraction);

  /// Schedules a rack-wide workload change at \p TimeS.
  void scheduleWorkload(double TimeS, fpga::WorkloadPoint Point);

  /// Runs the simulation and returns the rack trace.
  Expected<std::vector<RackTraceSample>> run(double DurationS);

  /// The rack-level alarm bank (shared-loop water, hottest junction).
  monitor::Supervisor &supervisor() { return Super; }

  /// Attaches a non-owning flight recorder; every step is recorded and
  /// the first protection trip (or Critical alarm) triggers the dump.
  /// Channel order matches flightChannels().
  void attachFlightRecorder(monitor::FlightRecorder *Recorder) {
    FlightRec = Recorder;
  }

  /// Invoked for each recorded rack trace sample during run().
  void setSampleCallback(
      std::function<void(const RackTraceSample &)> Callback) {
    SampleCallback = std::move(Callback);
  }

  /// Installs a per-step plant-degradation hook (see RackPlantEffects).
  void setPlantModifier(RackPlantModifierFn Modifier) {
    PlantModifier = std::move(Modifier);
  }

  /// Installs a sensor-fault transform applied to the rack alarm bank's
  /// readings (0 = water temp C, 1 = hottest junction C) before the
  /// supervisor sees them; the plant always integrates true state.
  void setSensorTransform(SensorTransformFn Transform) {
    SensorTransform = std::move(Transform);
  }

  /// Installs an external control policy invoked every
  /// Config.ControlPeriodS with the debounced report and per-module
  /// temperatures; its commands (clock scale, utilization scale, forced
  /// shutdown) take effect the following step.
  void setControlPolicy(RackControlPolicyFn Policy) {
    ControlPolicy = std::move(Policy);
  }

  /// Enables the physics audit for subsequent run() calls: every
  /// module's implicit step is energy-audited, the water-loop operator
  /// splitting drift is tracked against the coupling budget, and a
  /// Critical budget breach triggers the attached flight recorder
  /// ("audit budget breach"). Off by default.
  void enableAudit(const audit::DriftBudgets &Budgets =
                       audit::DriftBudgets());

  /// The physics auditor, or nullptr when auditing is disabled.
  audit::PhysicsAuditor *auditor() { return Auditor.get(); }
  const audit::PhysicsAuditor *auditor() const { return Auditor.get(); }

  /// Channel names (and order) of flight-recorder frames.
  static const std::vector<std::string> &flightChannels();

private:
  struct Event {
    double TimeS;
    enum class Kind { ChillerCapacity, Workload } Kind;
    double Value = 0.0;
    fpga::WorkloadPoint Point;
  };

  rcsystem::RackConfig Rack;
  double AmbientTempC;
  RackTransientConfig Config;
  std::vector<Event> Events;
  monitor::Supervisor Super;
  monitor::FlightRecorder *FlightRec = nullptr;
  std::unique_ptr<audit::PhysicsAuditor> Auditor;
  std::function<void(const RackTraceSample &)> SampleCallback;
  RackPlantModifierFn PlantModifier;
  SensorTransformFn SensorTransform;
  RackControlPolicyFn ControlPolicy;
};

} // namespace sim
} // namespace rcs

#endif // RCS_SIM_RACKTRANSIENT_H
