//===- sim/SolverAssets.cpp - Reusable warmed solver state --------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/SolverAssets.h"

#include "system/Module.h"

#include <cassert>

using namespace rcs;
using namespace rcs::sim;
using namespace rcs::rcsystem;

TransientSolverAssets::TransientSolverAssets(const ModuleConfig &Module,
                                             const TransientConfig &Config) {
  assert(Module.Cooling == CoolingKind::Immersion &&
         "transient solver assets model immersion modules");
  Oil = Module.Immersion.CoolantKind ==
                ImmersionCoolingConfig::Coolant::MineralOilMd45
            ? fluids::makeMineralOilMd45()
        : Module.Immersion.CoolantKind ==
                ImmersionCoolingConfig::Coolant::WhiteMineralOil
            ? fluids::makeWhiteMineralOil()
            : fluids::makeEngineeredDielectric();
  Water = fluids::makeWater();

  Ccb Board(Module.Board);
  const int NumFpgas = Module.NumCcbs * Board.computeFpgaCount();
  ChipCapacitanceJPerK = NumFpgas * Config.ChipCapacitancePerFpgaJPerK;
  // Exact-table anchor: taken before the property cache resamples the
  // tables, matching the construction order of a cold run.
  FullOilCapacitanceJPerK =
      Config.OilVolumeM3 * Oil->volumetricHeatCapacityJPerM3K(35.0);

  Chips = Net.addNode("chips", ChipCapacitanceJPerK);
  Bath = Net.addNode("oil", FullOilCapacitanceJPerK);
  // The boundary value is a placeholder: every run rewrites it (and the
  // conductances, bath capacitance and heat sources) before stepping.
  WaterBoundary = Net.addBoundaryNode("water", 20.0);
  Net.addConductance(Chips, Bath, 1.0);
  Net.addConductance(Bath, WaterBoundary, 1.0);
  Net.addHeatSource(Chips, 0.0);
  Net.addHeatSource(Bath, 0.0);

  // Property lookups dominate the per-step conductance evaluation; the
  // uniform-grid cache makes them O(1) (agreement with the exact tables
  // is covered by the solver-equivalence tests).
  if (Config.UseFluidPropertyCache) {
    Oil->enablePropertyCache();
    Water->enablePropertyCache();
  }
}
