//===- sim/MonteCarlo.cpp - Availability simulation -----------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/MonteCarlo.h"

#include "fpga/Reliability.h"
#include "support/Random.h"

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace rcs;
using namespace rcs::sim;

AvailabilityReport
rcs::sim::simulateAvailability(const AvailabilityConfig &Config) {
  assert(Config.NumTrials > 0 && Config.HorizonYears > 0 &&
         "invalid Monte-Carlo configuration");
  const double HoursPerYear = 8766.0;
  const double Horizon = Config.HorizonYears * HoursPerYear;

  telemetry::Registry &Telemetry = telemetry::Registry::global();
  static telemetry::Counter &TrialCount =
      Telemetry.counter("sim.montecarlo.trials");
  static telemetry::Counter &FailureCount =
      Telemetry.counter("sim.montecarlo.failures");
  telemetry::ScopedTimer Timer(Telemetry, "sim.montecarlo.run");

  RandomEngine Rng(Config.Seed);
  AvailabilityReport Report;
  Report.PerComponentFailuresPerYear.assign(Config.Components.size(), 0.0);

  double TotalFailures = 0.0;
  double TotalDowntime = 0.0;
  for (int Trial = 0; Trial != Config.NumTrials; ++Trial) {
    // Per-trial tallies stay local: the inner renewal loop is the hot
    // path, so telemetry folds in once per trial.
    uint64_t TrialFailures = 0;
    double TrialDowntime = 0.0;
    for (size_t C = 0; C != Config.Components.size(); ++C) {
      const ComponentSpec &Component = Config.Components[C];
      double Rate = 1.0 / Component.MtbfHours; // Failures per hour.
      for (int Instance = 0; Instance != Component.Count; ++Instance) {
        // Renewal process: failure, repair, back to service.
        double Clock = Rng.exponential(Rate);
        while (Clock < Horizon) {
          TotalFailures += 1.0;
          ++TrialFailures;
          Report.PerComponentFailuresPerYear[C] += 1.0;
          if (Component.TakesDownModule) {
            TotalDowntime += Component.RepairHours;
            TrialDowntime += Component.RepairHours;
          }
          Clock += Component.RepairHours + Rng.exponential(Rate);
        }
      }
    }
    TrialCount.add();
    FailureCount.add(TrialFailures);
    if (Telemetry.tracingEnabled())
      Telemetry.emitEvent("sim.montecarlo.trial",
                          {{"trial", Trial},
                           {"failures", static_cast<long long>(TrialFailures)},
                           {"downtime_h", TrialDowntime}});
  }

  double TrialYears = Config.NumTrials * Config.HorizonYears;
  Report.FailuresPerYear = TotalFailures / TrialYears;
  Report.ModuleDowntimeHoursPerYear = TotalDowntime / TrialYears;
  Report.Availability =
      1.0 - Report.ModuleDowntimeHoursPerYear / HoursPerYear;
  for (double &PerYear : Report.PerComponentFailuresPerYear)
    PerYear /= TrialYears;
  return Report;
}

std::vector<ComponentSpec>
rcs::sim::makeImmersionComponents(int NumFpgas, double JunctionTempC,
                                  int NumPumps, bool WashoutProneGrease) {
  std::vector<ComponentSpec> Components;
  Components.push_back(
      {"FPGA (wear-out)", NumFpgas, fpga::mttfHours(JunctionTempC), 6.0,
       true});
  Components.push_back({"oil pump", NumPumps, 45000.0, 8.0, true});
  Components.push_back({"immersion PSU", 3, 180000.0, 4.0, false});
  // The paper's wash-out problem: grease-based interfaces degrade in oil
  // and force a maintenance stoppage to re-coat (roughly yearly).
  if (WashoutProneGrease)
    Components.push_back({"TIM re-coating (wash-out)", 1, 8000.0, 24.0,
                          true});
  return Components;
}

std::vector<ComponentSpec>
rcs::sim::makeColdPlateComponents(int NumFpgas, double JunctionTempC,
                                  int NumConnections) {
  std::vector<ComponentSpec> Components;
  Components.push_back(
      {"FPGA (wear-out)", NumFpgas, fpga::mttfHours(JunctionTempC), 6.0,
       true});
  Components.push_back({"water pump", 2, 45000.0, 8.0, true});
  Components.push_back({"air PSU", 3, 150000.0, 4.0, false});
  // Pressure-tight quick connectors: individually reliable, but the
  // design multiplies them (one per plate, Section 2), and a leak over
  // live electronics is a long outage.
  Components.push_back(
      {"liquid connector leak", NumConnections, 9.0e5, 48.0, true});
  // Dew-point condensation events when facility humidity control slips.
  Components.push_back({"condensation event", 1, 2.5e5, 24.0, true});
  return Components;
}

std::vector<ComponentSpec> rcs::sim::makeAirComponents(int NumFpgas,
                                                       double JunctionTempC,
                                                       int NumFans) {
  std::vector<ComponentSpec> Components;
  Components.push_back(
      {"FPGA (wear-out)", NumFpgas, fpga::mttfHours(JunctionTempC), 6.0,
       true});
  // Redundant fan trays: single failures are hot-swapped.
  Components.push_back({"fan", NumFans, 60000.0, 1.0, false});
  Components.push_back({"air PSU", 3, 150000.0, 4.0, false});
  return Components;
}
