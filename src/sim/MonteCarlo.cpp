//===- sim/MonteCarlo.cpp - Availability simulation -----------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/MonteCarlo.h"

#include "fpga/Reliability.h"
#include "support/Parallel.h"
#include "support/Random.h"

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace rcs;
using namespace rcs::sim;

AvailabilityReport
rcs::sim::simulateAvailability(const AvailabilityConfig &Config) {
  assert(Config.NumTrials > 0 && Config.HorizonYears > 0 &&
         "invalid Monte-Carlo configuration");
  const double HoursPerYear = 8766.0;
  const double Horizon = Config.HorizonYears * HoursPerYear;

  telemetry::Registry &Telemetry = telemetry::Registry::global();
  static telemetry::Counter &TrialCount =
      Telemetry.counter("sim.montecarlo.trials");
  static telemetry::Counter &FailureCount =
      Telemetry.counter("sim.montecarlo.failures");
  telemetry::ScopedTimer Timer(Telemetry, "sim.montecarlo.run");

  AvailabilityReport Report;
  Report.PerComponentFailuresPerYear.assign(Config.Components.size(), 0.0);

  // Each trial draws from its own (Seed, Trial) stream and writes into its
  // own slot; the reduction below walks slots in trial order. Both facts
  // together make the report bit-identical at any thread count.
  struct TrialResult {
    uint64_t Failures = 0;
    double DowntimeHours = 0.0;
    std::vector<double> PerComponentFailures;
  };
  std::vector<TrialResult> Results(
      static_cast<size_t>(Config.NumTrials));

  parallelFor(
      Config.NumThreads, static_cast<size_t>(Config.NumTrials),
      [&](size_t Trial) {
        RandomEngine Rng(Config.Seed, Trial);
        TrialResult &Result = Results[Trial];
        Result.PerComponentFailures.assign(Config.Components.size(), 0.0);
        for (size_t C = 0; C != Config.Components.size(); ++C) {
          const ComponentSpec &Component = Config.Components[C];
          double Rate = 1.0 / Component.MtbfHours; // Failures per hour.
          for (int Instance = 0; Instance != Component.Count; ++Instance) {
            // Renewal process: failure, repair, back to service.
            double Clock = Rng.exponential(Rate);
            while (Clock < Horizon) {
              ++Result.Failures;
              Result.PerComponentFailures[C] += 1.0;
              if (Component.TakesDownModule)
                Result.DowntimeHours += Component.RepairHours;
              Clock += Component.RepairHours + Rng.exponential(Rate);
            }
          }
        }
        // Telemetry counters are thread-safe; the trace event carries the
        // trial id so interleaved emission stays attributable.
        TrialCount.add();
        FailureCount.add(Result.Failures);
        if (Telemetry.tracingEnabled())
          Telemetry.emitEvent(
              "sim.montecarlo.trial",
              {{"trial", static_cast<long long>(Trial)},
               {"failures", static_cast<long long>(Result.Failures)},
               {"downtime_h", Result.DowntimeHours}});
      });

  double TotalFailures = 0.0;
  double TotalDowntime = 0.0;
  for (const TrialResult &Result : Results) {
    TotalFailures += static_cast<double>(Result.Failures);
    TotalDowntime += Result.DowntimeHours;
    for (size_t C = 0; C != Result.PerComponentFailures.size(); ++C)
      Report.PerComponentFailuresPerYear[C] += Result.PerComponentFailures[C];
  }

  double TrialYears = Config.NumTrials * Config.HorizonYears;
  Report.FailuresPerYear = TotalFailures / TrialYears;
  Report.ModuleDowntimeHoursPerYear = TotalDowntime / TrialYears;
  Report.Availability =
      1.0 - Report.ModuleDowntimeHoursPerYear / HoursPerYear;
  for (double &PerYear : Report.PerComponentFailuresPerYear)
    PerYear /= TrialYears;
  return Report;
}

std::vector<ComponentSpec>
rcs::sim::makeImmersionComponents(int NumFpgas, double JunctionTempC,
                                  int NumPumps, bool WashoutProneGrease) {
  std::vector<ComponentSpec> Components;
  Components.push_back(
      {"FPGA (wear-out)", NumFpgas, fpga::mttfHours(JunctionTempC), 6.0,
       true});
  Components.push_back({"oil pump", NumPumps, 45000.0, 8.0, true});
  Components.push_back({"immersion PSU", 3, 180000.0, 4.0, false});
  // The paper's wash-out problem: grease-based interfaces degrade in oil
  // and force a maintenance stoppage to re-coat (roughly yearly).
  if (WashoutProneGrease)
    Components.push_back({"TIM re-coating (wash-out)", 1, 8000.0, 24.0,
                          true});
  return Components;
}

std::vector<ComponentSpec>
rcs::sim::makeColdPlateComponents(int NumFpgas, double JunctionTempC,
                                  int NumConnections) {
  std::vector<ComponentSpec> Components;
  Components.push_back(
      {"FPGA (wear-out)", NumFpgas, fpga::mttfHours(JunctionTempC), 6.0,
       true});
  Components.push_back({"water pump", 2, 45000.0, 8.0, true});
  Components.push_back({"air PSU", 3, 150000.0, 4.0, false});
  // Pressure-tight quick connectors: individually reliable, but the
  // design multiplies them (one per plate, Section 2), and a leak over
  // live electronics is a long outage.
  Components.push_back(
      {"liquid connector leak", NumConnections, 9.0e5, 48.0, true});
  // Dew-point condensation events when facility humidity control slips.
  Components.push_back({"condensation event", 1, 2.5e5, 24.0, true});
  return Components;
}

std::vector<ComponentSpec> rcs::sim::makeAirComponents(int NumFpgas,
                                                       double JunctionTempC,
                                                       int NumFans) {
  std::vector<ComponentSpec> Components;
  Components.push_back(
      {"FPGA (wear-out)", NumFpgas, fpga::mttfHours(JunctionTempC), 6.0,
       true});
  // Redundant fan trays: single failures are hot-swapped.
  Components.push_back({"fan", NumFans, 60000.0, 1.0, false});
  Components.push_back({"air PSU", 3, 150000.0, 4.0, false});
  return Components;
}
