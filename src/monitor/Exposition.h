//===- monitor/Exposition.h - Prometheus and JSONL metric export -*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a telemetry Registry snapshot into formats external tooling
/// scrapes: the Prometheus text exposition format (counters as
/// `_total`, gauges verbatim, histograms and timers as summaries with
/// p50/p95/p99 quantile samples), and compact one-object-per-line JSONL
/// snapshots a long simulation can append periodically. Metric names are
/// sanitized (`sim.transient.steps` -> `skatsim_sim_transient_steps`);
/// see docs/OBSERVABILITY.md for the conventions.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_MONITOR_EXPOSITION_H
#define RCS_MONITOR_EXPOSITION_H

#include "support/Status.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <string>
#include <string_view>

namespace rcs {
namespace monitor {

/// Maps a dotted metric name onto the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*: dots, spaces and other outsiders become
/// '_', and a leading digit gains a '_' prefix.
std::string prometheusName(std::string_view Name);

/// Refreshes the derived solver-introspection gauges from the raw
/// solver counters: `thermal.factor_cache.hit_rate` (symbolic/numeric
/// factor reuses over all factor requests), `hydraulics.newton.
/// mean_iterations` (iterations per converged solve),
/// `hydraulics.newton.fallback_rate` (analytic-Jacobian solves that
/// fell back to finite differences) and `hydraulics.newton.
/// warm_start_rate`. Cheap; call right before snapshotting.
/// SnapshotWriter::sample does this automatically.
void updateSolverGauges(telemetry::Registry &Reg);

/// Renders \p Snapshot in the Prometheus text exposition format, every
/// metric prefixed with `<Prefix>_`.
std::string renderPrometheus(const telemetry::MetricsSnapshot &Snapshot,
                             std::string_view Prefix = "skatsim");

/// Snapshots \p Reg and writes the Prometheus rendering to \p Path.
Status writePrometheusFile(const telemetry::Registry &Reg,
                           const std::string &Path,
                           std::string_view Prefix = "skatsim");

/// Renders \p Snapshot as one compact JSON object (single line), with
/// `"t_s": TimeS` leading — the line format of periodic snapshot files.
std::string renderSnapshotLine(const telemetry::MetricsSnapshot &Snapshot,
                               double TimeS);

/// Appends periodic registry snapshots to a JSONL file, keyed on
/// simulation time so a paused wall clock does not starve the stream.
class SnapshotWriter {
public:
  /// Opens \p Path for writing. \p PeriodS is simulation seconds between
  /// samples; \p Reg defaults to the process-wide registry.
  SnapshotWriter(std::string Path, double PeriodS,
                 telemetry::Registry *Reg = nullptr);
  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter &) = delete;
  SnapshotWriter &operator=(const SnapshotWriter &) = delete;

  /// True when the file opened; the failure is available as status().
  bool isOpen() const { return Out != nullptr; }
  const Status &status() const { return OpenStatus; }
  size_t numSnapshots() const { return NumSnapshots; }

  /// Writes a snapshot when \p SimTimeS has advanced a full period past
  /// the previous one (the first call always writes).
  Status maybeSample(double SimTimeS);

  /// Writes a snapshot unconditionally.
  Status sample(double SimTimeS);

  /// Flushes and closes. Idempotent.
  Status close();

private:
  std::string Path;
  double PeriodS;
  telemetry::Registry *Reg;
  std::FILE *Out = nullptr;
  Status OpenStatus;
  double NextSampleTimeS = 0.0;
  bool Started = false;
  size_t NumSnapshots = 0;
};

} // namespace monitor
} // namespace rcs

#endif // RCS_MONITOR_EXPOSITION_H
