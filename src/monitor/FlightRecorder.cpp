//===- monitor/FlightRecorder.cpp - Ring-buffer black box ---------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "monitor/FlightRecorder.h"

#include "telemetry/Json.h"

#include <cassert>
#include <cstdio>

using namespace rcs;
using namespace rcs::monitor;

FlightRecorder::FlightRecorder(std::vector<std::string> ChannelsIn,
                               FlightRecorderConfig ConfigIn,
                               telemetry::Registry *RegIn)
    : Channels(std::move(ChannelsIn)), Config(std::move(ConfigIn)),
      Reg(RegIn ? RegIn : &telemetry::Registry::global()),
      Stride(1 + Channels.size()) {
  assert(Config.CapacityFrames > 0 && "recorder needs capacity");
  assert(!Channels.empty() && "recorder needs at least one channel");
  Ring.resize(Config.CapacityFrames * Stride);
  FrameCount = &Reg->counter("monitor.flight.frames");
  DumpCount = &Reg->counter("monitor.flight.dumps");
  IgnoredTriggers = &Reg->counter("monitor.flight.ignored_triggers");
}

void FlightRecorder::record(double TimeS, const double *Values,
                            size_t NumValues) {
  assert(NumValues == Channels.size() &&
         "one value per recorder channel");
  double *Slot = &Ring[Head * Stride];
  Slot[0] = TimeS;
  for (size_t I = 0; I != NumValues; ++I)
    Slot[1 + I] = Values[I];
  Head = (Head + 1) % Config.CapacityFrames;
  if (Size < Config.CapacityFrames)
    ++Size;
  ++TotalFrames;
  FrameCount->add();

  if (Triggered && !Dumped) {
    ++PostFrames;
    if (PostFrames >= Config.PostTriggerFrames)
      DumpStatus = writeDump();
  }
}

bool FlightRecorder::trigger(std::string_view Reason, double TimeS) {
  if (Triggered) {
    IgnoredTriggers->add();
    return false;
  }
  Triggered = true;
  TriggerReason = std::string(Reason);
  TriggerTimeS = TimeS;
  PostFrames = 0;
  if (Reg->tracingEnabled())
    Reg->emitEvent("monitor.flight.trigger",
                   {{"t_s", TimeS},
                    {"reason", std::string_view(TriggerReason)}});
  if (Config.PostTriggerFrames == 0)
    DumpStatus = writeDump();
  return true;
}

Status FlightRecorder::finalize() {
  if (Triggered && !Dumped)
    DumpStatus = writeDump();
  return DumpStatus;
}

std::vector<FlightRecorder::Frame> FlightRecorder::window() const {
  std::vector<Frame> Frames;
  Frames.reserve(Size);
  size_t Oldest = Size < Config.CapacityFrames
                      ? 0
                      : Head; // Full ring: Head is the oldest frame.
  for (size_t I = 0; I != Size; ++I) {
    const double *Slot =
        &Ring[((Oldest + I) % Config.CapacityFrames) * Stride];
    Frame F;
    F.TimeS = Slot[0];
    F.Values.assign(Slot + 1, Slot + Stride);
    Frames.push_back(std::move(F));
  }
  return Frames;
}

void FlightRecorder::reset() {
  Head = 0;
  Size = 0;
  Triggered = false;
  Dumped = false;
  TriggerReason.clear();
  TriggerTimeS = 0.0;
  PostFrames = 0;
  DumpStatus = Status::ok();
}

Status FlightRecorder::writeDump() {
  Dumped = true; // One attempt per trigger, success or not.
  if (Config.DumpPath.empty())
    return Status::error("flight recorder triggered ('" + TriggerReason +
                         "') but no dump path is configured");
  std::FILE *Out = std::fopen(Config.DumpPath.c_str(), "w");
  if (!Out)
    return Status::error("cannot open flight recorder dump '" +
                         Config.DumpPath + "'");

  std::string Header =
      "{\"kind\": \"flight_recorder_header\", \"reason\": " +
      telemetry::jsonQuote(TriggerReason) +
      ", \"trigger_t_s\": " + telemetry::jsonNumber(TriggerTimeS) +
      ", \"frames\": " + std::to_string(Size) +
      ", \"capacity\": " + std::to_string(Config.CapacityFrames) +
      ", \"post_trigger_frames\": " + std::to_string(PostFrames) +
      ", \"channels\": [";
  for (size_t I = 0; I != Channels.size(); ++I) {
    if (I != 0)
      Header += ", ";
    Header += telemetry::jsonQuote(Channels[I]);
  }
  Header += "]}\n";
  std::fputs(Header.c_str(), Out);

  for (const Frame &F : window()) {
    std::string Line = "{\"kind\": \"frame\", \"t_s\": " +
                       telemetry::jsonNumber(F.TimeS) + ", \"values\": [";
    for (size_t I = 0; I != F.Values.size(); ++I) {
      if (I != 0)
        Line += ", ";
      Line += telemetry::jsonNumber(F.Values[I]);
    }
    Line += "]}\n";
    std::fputs(Line.c_str(), Out);
  }

  bool Ok = std::fflush(Out) == 0 && !std::ferror(Out);
  Ok = std::fclose(Out) == 0 && Ok;
  if (!Ok)
    return Status::error("error writing flight recorder dump '" +
                         Config.DumpPath + "'");
  DumpCount->add();
  if (Reg->tracingEnabled())
    Reg->emitEvent("monitor.flight.dump",
                   {{"t_s", TriggerTimeS},
                    {"frames", static_cast<long long>(Size)},
                    {"path", std::string_view(Config.DumpPath)}});
  return Status::ok();
}
