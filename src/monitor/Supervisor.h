//===- monitor/Supervisor.h - Debounced alarm bank for the sims -*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Supervisor owns one AlarmStateMachine per monitored quantity and
/// evaluates them as a sweep, the live counterpart of the stateless
/// ControlSystem::evaluateRaw. The transient simulators feed it every
/// control period; the controller then acts on debounced annunciator
/// states instead of raw classifications, so a single noisy sample at a
/// threshold boundary no longer toggles pump speed or clocks.
///
/// Threading contract: a Supervisor is thread-confined, like the
/// simulators that own one — update()/acknowledgeAll()/reset() must all
/// come from the same thread, and transition callbacks run synchronously
/// on that thread. When sweep replicates run on the support/Parallel.h
/// pool, each replicate constructs its own Supervisor, so banks never
/// cross threads; anything a callback touches that *is* shared across
/// replicates (telemetry, progress tallies) must be atomic or
/// `RCS_GUARDED_BY` an `rcs::Mutex` (support/ThreadSafety.h) — the
/// telemetry::Registry the bank reports to already is.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_MONITOR_SUPERVISOR_H
#define RCS_MONITOR_SUPERVISOR_H

#include "monitor/Alarm.h"

#include <utility>

namespace rcs {
namespace monitor {

/// Debounce/hysteresis tuning shared by a supervisor's alarms.
struct SupervisorTuning {
  int DebounceSamples = 2;
  /// Hysteresis on temperature alarms, in kelvin.
  double TempHysteresisK = 2.0;
  /// Hysteresis on the flow alarm, as a fraction of the design flow.
  double FlowHysteresisFraction = 0.05;
  bool LatchCritical = true;
};

/// One supervisory sweep's outcome.
struct SupervisoryReport {
  /// Worst displayed level across the bank (latched alarms included).
  rcsystem::AlarmLevel Worst = rcsystem::AlarmLevel::Normal;
  /// Per-sensor annunciator states, in the bank's sensor order.
  std::vector<AlarmState> States;
  bool anyLatched() const {
    for (AlarmState S : States)
      if (S == AlarmState::Latched)
        return true;
    return false;
  }
};

/// A bank of alarm state machines evaluated together.
class Supervisor {
public:
  /// \p Reg defaults to the process-wide registry.
  explicit Supervisor(
      std::vector<std::pair<std::string, AlarmConfig>> Sensors,
      telemetry::Registry *Reg = nullptr);

  size_t numSensors() const { return Machines.size(); }
  AlarmStateMachine &sensor(size_t I) { return Machines[I]; }
  const AlarmStateMachine &sensor(size_t I) const { return Machines[I]; }

  /// Feeds one sweep: Values[I] is sensor I's reading at \p TimeS.
  SupervisoryReport update(double TimeS, const double *Values,
                           size_t NumValues);

  /// Acknowledges every alarm; returns true if any state changed.
  bool acknowledgeAll(double TimeS);

  /// Resets every machine for a fresh run (transition logs cleared).
  void reset();

  /// Installs \p Callback on every machine (replacing earlier ones).
  void setTransitionCallback(
      std::function<void(const AlarmTransition &)> Callback);

  /// Every machine's transitions merged into one time-ordered log.
  std::vector<AlarmTransition> allTransitions() const;

private:
  std::vector<AlarmStateMachine> Machines;
};

/// The classic CM sensor bank over \p Config's thresholds, in the order
/// the paper lists them: 0 = coolant temperature, 1 = FPGA junction
/// temperature, 2 = coolant flow. recommendModuleAction assumes this
/// layout.
Supervisor makeModuleSupervisor(const rcsystem::MonitoringConfig &Config,
                                const SupervisorTuning &Tuning,
                                telemetry::Registry *Reg = nullptr);

/// Maps a module supervisor's report to the controller policy of
/// ControlSystem::evaluateRaw: critical anywhere (latched included) ->
/// shutdown; junction warning -> shed clocks; coolant or flow warning ->
/// push the pump harder.
rcsystem::ControlAction
recommendModuleAction(const SupervisoryReport &Report);

/// Rack-level bank: 0 = chilled water temperature, 1 = max FPGA
/// junction temperature.
Supervisor makeRackSupervisor(double WaterWarnC, double WaterCriticalC,
                              double JunctionWarnC, double JunctionCriticalC,
                              const SupervisorTuning &Tuning,
                              telemetry::Registry *Reg = nullptr);

} // namespace monitor
} // namespace rcs

#endif // RCS_MONITOR_SUPERVISOR_H
