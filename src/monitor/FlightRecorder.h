//===- monitor/FlightRecorder.h - Ring-buffer black box ---------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity ring buffer that continuously samples simulation
/// state at low cost (one flat pre-allocated buffer, no per-frame
/// allocation) and, when a protection trip or Critical alarm fires,
/// dumps the pre-trip window plus a configurable post-trip tail to a
/// JSONL artifact: a header object describing the channels and trigger,
/// then one frame object per line. Every simulated failure gets a
/// black-box record. See docs/OBSERVABILITY.md for the schema.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_MONITOR_FLIGHTRECORDER_H
#define RCS_MONITOR_FLIGHTRECORDER_H

#include "support/Status.h"
#include "telemetry/Telemetry.h"

#include <string>
#include <vector>

namespace rcs {
namespace monitor {

/// Tunables of the flight recorder.
struct FlightRecorderConfig {
  /// Frames held in the ring; older frames are overwritten.
  size_t CapacityFrames = 600;
  /// Frames recorded after a trigger before the dump is written.
  size_t PostTriggerFrames = 30;
  /// Where a dump is written; a trigger with no path set is an error
  /// surfaced through finalize()/lastDumpStatus().
  std::string DumpPath;
};

/// Continuous sampler with trigger-on-trip dumps.
class FlightRecorder {
public:
  /// One decoded frame (introspection and tests; the ring itself is flat).
  struct Frame {
    double TimeS = 0.0;
    std::vector<double> Values;
  };

  /// \p Channels names each value slot of a frame, in record() order.
  /// \p Reg defaults to the process-wide registry.
  FlightRecorder(std::vector<std::string> Channels,
                 FlightRecorderConfig Config,
                 telemetry::Registry *Reg = nullptr);

  const std::vector<std::string> &channels() const { return Channels; }
  size_t capacity() const { return Config.CapacityFrames; }
  /// Frames currently held (<= capacity).
  size_t framesHeld() const { return Size; }
  /// Frames ever recorded.
  uint64_t framesRecorded() const { return TotalFrames; }
  bool triggered() const { return Triggered; }
  bool dumped() const { return Dumped; }
  /// Status of the last dump attempt (ok when none was attempted).
  const Status &lastDumpStatus() const { return DumpStatus; }

  /// Records one frame. \p NumValues must match the channel count.
  void record(double TimeS, const double *Values, size_t NumValues);

  /// Arms the dump: after PostTriggerFrames more samples the window is
  /// written to DumpPath. Only the first trigger of a run is honoured;
  /// returns false (and counts the ignore) for later ones.
  bool trigger(std::string_view Reason, double TimeS);

  /// Writes a pending dump even if the post-trigger tail is short (end
  /// of simulation). Idempotent; ok when nothing is pending.
  Status finalize();

  /// Decodes the held window, oldest frame first.
  std::vector<Frame> window() const;

  /// Clears frames and trigger state for a fresh run.
  void reset();

private:
  Status writeDump();

  std::vector<std::string> Channels;
  FlightRecorderConfig Config;
  telemetry::Registry *Reg;
  size_t Stride;             ///< Doubles per frame: 1 (time) + channels.
  std::vector<double> Ring;  ///< CapacityFrames * Stride, flat.
  size_t Head = 0;           ///< Next write slot (frame index).
  size_t Size = 0;           ///< Frames held.
  uint64_t TotalFrames = 0;
  bool Triggered = false;
  bool Dumped = false;
  std::string TriggerReason;
  double TriggerTimeS = 0.0;
  size_t PostFrames = 0;
  Status DumpStatus;
  telemetry::Counter *FrameCount = nullptr;
  telemetry::Counter *DumpCount = nullptr;
  telemetry::Counter *IgnoredTriggers = nullptr;
};

} // namespace monitor
} // namespace rcs

#endif // RCS_MONITOR_FLIGHTRECORDER_H
