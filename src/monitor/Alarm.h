//===- monitor/Alarm.h - Alarm state machines with hysteresis ---*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SCADA-style alarm handling for the monitoring subsystem. The passive
/// ThresholdSensor classifies one reading; an AlarmStateMachine turns a
/// stream of readings into stable annunciator states:
///
///  - debounce: an excursion must persist for N consecutive samples
///    before the alarm asserts (single-sample spikes do not chatter);
///  - hysteresis: an asserted alarm only clears once the reading retreats
///    a configurable band past its threshold (boundary noise does not
///    toggle the alarm);
///  - latching: a Critical alarm holds its indication even after the
///    process returns to normal, until an operator acknowledges it —
///    every protection trip stays visible until a human has seen it.
///
/// Every state change is appended to a bounded transition log and, when
/// the owning registry is tracing, emitted as a `monitor.alarm.transition`
/// event; see docs/OBSERVABILITY.md for the lifecycle diagram.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_MONITOR_ALARM_H
#define RCS_MONITOR_ALARM_H

#include "system/Monitoring.h"
#include "telemetry/Telemetry.h"

#include <functional>
#include <string>
#include <vector>

namespace rcs {
namespace monitor {

/// Annunciator state of one alarm. `Latched` means the process condition
/// has returned inside the hysteresis band but the critical indication is
/// held awaiting acknowledgement (ISA-18.2 "returned-to-normal,
/// unacknowledged"); `CriticalAcked` means the condition is still
/// critical but an operator has seen it.
enum class AlarmState {
  Normal,
  Warning,
  Critical,
  CriticalAcked,
  Latched,
};

/// Name of \p State for reports and trace events.
const char *alarmStateName(AlarmState State);

/// The level an annunciator displays for \p State. Latched and
/// acknowledged states still display Critical: the indication only drops
/// once the alarm is both clear and acknowledged.
rcsystem::AlarmLevel alarmStateLevel(AlarmState State);

/// Lower-cases \p Name and maps every character outside [a-z0-9_.] to
/// '_', for use inside metric names.
std::string metricSlug(std::string_view Name);

/// Tunables of one alarm state machine.
struct AlarmConfig {
  double WarnThreshold = 0.0;
  double CriticalThreshold = 0.0;
  /// Direction, matching ThresholdSensor.
  bool HighIsBad = true;
  /// How far past a threshold (toward safe) the reading must retreat
  /// before that band clears, in the measured quantity's units.
  double Hysteresis = 0.0;
  /// Consecutive qualifying samples before an escalation asserts.
  int DebounceSamples = 2;
  /// Whether Critical holds its indication until acknowledged.
  bool LatchCritical = true;
};

/// One recorded state change.
struct AlarmTransition {
  double TimeS = 0.0;
  std::string Sensor;
  AlarmState From = AlarmState::Normal;
  AlarmState To = AlarmState::Normal;
  /// The reading that caused the change (NaN for acknowledgements).
  double Value = 0.0;
};

/// Debounced, hysteretic, latching alarm over one measured quantity.
/// Not thread-safe; each machine belongs to one simulation loop.
class AlarmStateMachine {
public:
  /// Transition logs stop growing past this many entries (the drop is
  /// counted in `monitor.alarm.dropped_transitions`).
  static constexpr size_t MaxLoggedTransitions = 1024;

  /// \p Reg defaults to the process-wide registry.
  AlarmStateMachine(std::string Name, AlarmConfig Config,
                    telemetry::Registry *Reg = nullptr);

  const std::string &name() const { return Name; }
  const AlarmConfig &config() const { return Config; }
  AlarmState state() const { return State; }
  rcsystem::AlarmLevel level() const { return alarmStateLevel(State); }

  /// Feeds one sample at \p TimeS; returns the (possibly new) state.
  AlarmState update(double TimeS, double Value);

  /// Operator acknowledgement. Critical becomes CriticalAcked; Latched
  /// drops to whatever the last reading supports. Returns true when the
  /// state changed.
  bool acknowledge(double TimeS);

  /// Returns to Normal with empty counters and log (a new run).
  void reset();

  const std::vector<AlarmTransition> &transitions() const {
    return Transitions;
  }

  /// \p Callback is invoked on every transition, after it is logged.
  void setTransitionCallback(
      std::function<void(const AlarmTransition &)> Callback) {
    OnTransition = std::move(Callback);
  }

private:
  /// The level the current reading supports once hysteresis is applied:
  /// an asserted band stays asserted until the reading crosses the
  /// hysteresis-shifted threshold.
  rcsystem::AlarmLevel heldLevel(double Value) const;
  /// The level the machine is actively asserting (Latched asserts none).
  rcsystem::AlarmLevel activeLevel() const;
  void transitionTo(AlarmState Next, double TimeS, double Value);

  std::string Name;
  AlarmConfig Config;
  telemetry::Registry *Reg;
  rcsystem::ThresholdSensor Raw;  ///< Closed-boundary classification.
  rcsystem::ThresholdSensor Held; ///< Hysteresis-shifted clearing bands.
  AlarmState State = AlarmState::Normal;
  rcsystem::AlarmLevel PendingLevel = rcsystem::AlarmLevel::Normal;
  int PendingCount = 0;
  double LastValue = 0.0;
  std::vector<AlarmTransition> Transitions;
  std::function<void(const AlarmTransition &)> OnTransition;
  telemetry::Counter *TransitionCount = nullptr;
  telemetry::Counter *LatchCount = nullptr;
  telemetry::Counter *DroppedTransitions = nullptr;
  telemetry::Histogram *ValueHistogram = nullptr;
};

} // namespace monitor
} // namespace rcs

#endif // RCS_MONITOR_ALARM_H
