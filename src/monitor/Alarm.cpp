//===- monitor/Alarm.cpp - Alarm state machines with hysteresis ---------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "monitor/Alarm.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <limits>

using namespace rcs;
using namespace rcs::monitor;
using rcsystem::AlarmLevel;

const char *rcs::monitor::alarmStateName(AlarmState State) {
  switch (State) {
  case AlarmState::Normal:
    return "normal";
  case AlarmState::Warning:
    return "warning";
  case AlarmState::Critical:
    return "critical";
  case AlarmState::CriticalAcked:
    return "critical-acked";
  case AlarmState::Latched:
    return "latched";
  }
  assert(false && "unknown alarm state");
  return "?";
}

AlarmLevel rcs::monitor::alarmStateLevel(AlarmState State) {
  switch (State) {
  case AlarmState::Normal:
    return AlarmLevel::Normal;
  case AlarmState::Warning:
    return AlarmLevel::Warning;
  case AlarmState::Critical:
  case AlarmState::CriticalAcked:
  case AlarmState::Latched:
    return AlarmLevel::Critical;
  }
  assert(false && "unknown alarm state");
  return AlarmLevel::Critical;
}

std::string rcs::monitor::metricSlug(std::string_view Name) {
  std::string Slug;
  Slug.reserve(Name.size());
  for (char C : Name) {
    unsigned char U = static_cast<unsigned char>(C);
    if (std::isalnum(U) || C == '_' || C == '.')
      Slug += static_cast<char>(std::tolower(U));
    else
      Slug += '_';
  }
  return Slug;
}

AlarmStateMachine::AlarmStateMachine(std::string NameIn, AlarmConfig ConfigIn,
                                     telemetry::Registry *RegIn)
    : Name(std::move(NameIn)), Config(ConfigIn),
      Reg(RegIn ? RegIn : &telemetry::Registry::global()),
      Raw(Name, Config.WarnThreshold, Config.CriticalThreshold,
          Config.HighIsBad),
      Held(Name,
           Config.HighIsBad ? Config.WarnThreshold - Config.Hysteresis
                            : Config.WarnThreshold + Config.Hysteresis,
           Config.HighIsBad ? Config.CriticalThreshold - Config.Hysteresis
                            : Config.CriticalThreshold + Config.Hysteresis,
           Config.HighIsBad) {
  assert(Config.Hysteresis >= 0.0 && "hysteresis must be non-negative");
  assert(Config.DebounceSamples >= 1 && "debounce needs at least 1 sample");
  TransitionCount = &Reg->counter("monitor.alarm.transitions");
  LatchCount = &Reg->counter("monitor.alarm.latches");
  DroppedTransitions = &Reg->counter("monitor.alarm.dropped_transitions");
  ValueHistogram =
      &Reg->histogram("monitor.alarm." + metricSlug(Name) + ".value");
}

AlarmLevel AlarmStateMachine::heldLevel(double Value) const {
  return Held.classify(Value);
}

AlarmLevel AlarmStateMachine::activeLevel() const {
  switch (State) {
  case AlarmState::Normal:
  case AlarmState::Latched: // Condition cleared; only the latch holds.
    return AlarmLevel::Normal;
  case AlarmState::Warning:
    return AlarmLevel::Warning;
  case AlarmState::Critical:
  case AlarmState::CriticalAcked:
    return AlarmLevel::Critical;
  }
  assert(false && "unknown alarm state");
  return AlarmLevel::Normal;
}

void AlarmStateMachine::transitionTo(AlarmState Next, double TimeS,
                                     double Value) {
  if (Next == State)
    return;
  AlarmTransition Change;
  Change.TimeS = TimeS;
  Change.Sensor = Name;
  Change.From = State;
  Change.To = Next;
  Change.Value = Value;
  State = Next;

  TransitionCount->add();
  if (Next == AlarmState::Latched)
    LatchCount->add();
  if (Reg->tracingEnabled())
    Reg->emitEvent("monitor.alarm.transition",
                   {{"t_s", TimeS},
                    {"sensor", std::string_view(Name)},
                    {"from", alarmStateName(Change.From)},
                    {"to", alarmStateName(Change.To)},
                    {"value", Value}});
  if (Transitions.size() < MaxLoggedTransitions)
    Transitions.push_back(Change);
  else
    DroppedTransitions->add();
  if (OnTransition)
    OnTransition(Change);
}

AlarmState AlarmStateMachine::update(double TimeS, double Value) {
  LastValue = Value;
  ValueHistogram->record(Value);
  AlarmLevel RawLevel = Raw.classify(Value);

  // A latched alarm re-asserts the moment the condition truly returns —
  // it is the same excursion resuming, not new chatter to debounce.
  if (State == AlarmState::Latched) {
    if (RawLevel == AlarmLevel::Critical)
      transitionTo(AlarmState::Critical, TimeS, Value);
    return State;
  }

  AlarmLevel Active = activeLevel();
  if (static_cast<int>(RawLevel) > static_cast<int>(Active)) {
    // Escalation candidate: count consecutive samples at this level.
    if (PendingLevel == RawLevel) {
      ++PendingCount;
    } else {
      PendingLevel = RawLevel;
      PendingCount = 1;
    }
    if (PendingCount >= Config.DebounceSamples) {
      PendingLevel = AlarmLevel::Normal;
      PendingCount = 0;
      transitionTo(RawLevel == AlarmLevel::Critical ? AlarmState::Critical
                                                    : AlarmState::Warning,
                   TimeS, Value);
    }
    return State;
  }

  // Not escalating: any pending excursion was a blip.
  PendingLevel = AlarmLevel::Normal;
  PendingCount = 0;

  AlarmLevel HeldNow = heldLevel(Value);
  if (static_cast<int>(HeldNow) >= static_cast<int>(Active))
    return State; // Still inside the hysteresis band: hold.

  switch (State) {
  case AlarmState::Critical:
    // Unacknowledged critical never clears silently.
    transitionTo(Config.LatchCritical
                     ? AlarmState::Latched
                     : (HeldNow == AlarmLevel::Warning ? AlarmState::Warning
                                                       : AlarmState::Normal),
                 TimeS, Value);
    break;
  case AlarmState::CriticalAcked:
    transitionTo(HeldNow == AlarmLevel::Warning ? AlarmState::Warning
                                                : AlarmState::Normal,
                 TimeS, Value);
    break;
  case AlarmState::Warning:
    transitionTo(AlarmState::Normal, TimeS, Value);
    break;
  case AlarmState::Normal:
  case AlarmState::Latched:
    break;
  }
  return State;
}

bool AlarmStateMachine::acknowledge(double TimeS) {
  telemetry::Counter &AckCount = Reg->counter("monitor.alarm.acks");
  if (State == AlarmState::Critical) {
    AckCount.add();
    transitionTo(AlarmState::CriticalAcked, TimeS,
                 std::numeric_limits<double>::quiet_NaN());
    return true;
  }
  if (State == AlarmState::Latched) {
    AckCount.add();
    // The latch is released; drop to whatever the last reading supports
    // (a reading still inside the critical hysteresis band displays
    // Warning until it genuinely clears or re-asserts).
    transitionTo(heldLevel(LastValue) == AlarmLevel::Normal
                     ? AlarmState::Normal
                     : AlarmState::Warning,
                 TimeS, std::numeric_limits<double>::quiet_NaN());
    return true;
  }
  return false;
}

void AlarmStateMachine::reset() {
  State = AlarmState::Normal;
  PendingLevel = AlarmLevel::Normal;
  PendingCount = 0;
  LastValue = 0.0;
  Transitions.clear();
}
