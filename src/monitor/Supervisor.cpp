//===- monitor/Supervisor.cpp - Debounced alarm bank for the sims -------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "monitor/Supervisor.h"

#include <algorithm>
#include <cassert>

using namespace rcs;
using namespace rcs::monitor;
using rcsystem::AlarmLevel;
using rcsystem::ControlAction;

Supervisor::Supervisor(
    std::vector<std::pair<std::string, AlarmConfig>> Sensors,
    telemetry::Registry *Reg) {
  Machines.reserve(Sensors.size());
  for (auto &[Name, Config] : Sensors)
    Machines.emplace_back(std::move(Name), Config, Reg);
}

SupervisoryReport Supervisor::update(double TimeS, const double *Values,
                                     size_t NumValues) {
  assert(NumValues == Machines.size() &&
         "one value per supervised sensor");
  SupervisoryReport Report;
  Report.States.reserve(Machines.size());
  for (size_t I = 0; I != NumValues; ++I) {
    AlarmState State = Machines[I].update(TimeS, Values[I]);
    Report.States.push_back(State);
    AlarmLevel Level = alarmStateLevel(State);
    if (static_cast<int>(Level) > static_cast<int>(Report.Worst))
      Report.Worst = Level;
  }
  return Report;
}

bool Supervisor::acknowledgeAll(double TimeS) {
  bool Changed = false;
  for (AlarmStateMachine &Machine : Machines)
    Changed = Machine.acknowledge(TimeS) || Changed;
  return Changed;
}

void Supervisor::reset() {
  for (AlarmStateMachine &Machine : Machines)
    Machine.reset();
}

void Supervisor::setTransitionCallback(
    std::function<void(const AlarmTransition &)> Callback) {
  for (AlarmStateMachine &Machine : Machines)
    Machine.setTransitionCallback(Callback);
}

std::vector<AlarmTransition> Supervisor::allTransitions() const {
  std::vector<AlarmTransition> Merged;
  for (const AlarmStateMachine &Machine : Machines)
    Merged.insert(Merged.end(), Machine.transitions().begin(),
                  Machine.transitions().end());
  std::stable_sort(Merged.begin(), Merged.end(),
                   [](const AlarmTransition &A, const AlarmTransition &B) {
                     return A.TimeS < B.TimeS;
                   });
  return Merged;
}

Supervisor
rcs::monitor::makeModuleSupervisor(const rcsystem::MonitoringConfig &Config,
                                   const SupervisorTuning &Tuning,
                                   telemetry::Registry *Reg) {
  AlarmConfig Coolant;
  Coolant.WarnThreshold = Config.CoolantWarnTempC;
  Coolant.CriticalThreshold = Config.CoolantCriticalTempC;
  Coolant.HighIsBad = true;
  Coolant.Hysteresis = Tuning.TempHysteresisK;
  Coolant.DebounceSamples = Tuning.DebounceSamples;
  Coolant.LatchCritical = Tuning.LatchCritical;

  AlarmConfig Junction = Coolant;
  Junction.WarnThreshold = Config.JunctionWarnTempC;
  Junction.CriticalThreshold = Config.JunctionCriticalTempC;

  AlarmConfig Flow;
  Flow.WarnThreshold = Config.FlowWarnFraction * Config.DesignFlowM3PerS;
  Flow.CriticalThreshold =
      Config.FlowCriticalFraction * Config.DesignFlowM3PerS;
  Flow.HighIsBad = false;
  Flow.Hysteresis =
      Tuning.FlowHysteresisFraction * Config.DesignFlowM3PerS;
  Flow.DebounceSamples = Tuning.DebounceSamples;
  Flow.LatchCritical = Tuning.LatchCritical;

  return Supervisor({{"coolant temperature", Coolant},
                     {"FPGA junction temperature", Junction},
                     {"coolant flow", Flow}},
                    Reg);
}

ControlAction
rcs::monitor::recommendModuleAction(const SupervisoryReport &Report) {
  assert(Report.States.size() == 3 && "module supervisor has 3 sensors");
  if (Report.Worst == AlarmLevel::Critical)
    return ControlAction::Shutdown;
  if (Report.Worst == AlarmLevel::Normal)
    return ControlAction::None;
  if (alarmStateLevel(Report.States[1]) == AlarmLevel::Warning)
    return ControlAction::ReduceClock;
  return ControlAction::RaisePumpSpeed;
}

Supervisor rcs::monitor::makeRackSupervisor(
    double WaterWarnC, double WaterCriticalC, double JunctionWarnC,
    double JunctionCriticalC, const SupervisorTuning &Tuning,
    telemetry::Registry *Reg) {
  AlarmConfig Water;
  Water.WarnThreshold = WaterWarnC;
  Water.CriticalThreshold = WaterCriticalC;
  Water.HighIsBad = true;
  Water.Hysteresis = Tuning.TempHysteresisK;
  Water.DebounceSamples = Tuning.DebounceSamples;
  Water.LatchCritical = Tuning.LatchCritical;

  AlarmConfig Junction = Water;
  Junction.WarnThreshold = JunctionWarnC;
  Junction.CriticalThreshold = JunctionCriticalC;

  return Supervisor({{"rack water temperature", Water},
                     {"rack max junction temperature", Junction}},
                    Reg);
}
