//===- monitor/Exposition.cpp - Prometheus and JSONL metric export ------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "monitor/Exposition.h"

#include "telemetry/Json.h"

#include <cctype>

using namespace rcs;
using namespace rcs::monitor;
using telemetry::HistogramSnapshot;
using telemetry::MetricsSnapshot;
using telemetry::SpanStats;

std::string rcs::monitor::prometheusName(std::string_view Name) {
  std::string Out;
  Out.reserve(Name.size() + 1);
  for (char C : Name) {
    unsigned char U = static_cast<unsigned char>(C);
    Out += std::isalnum(U) || C == '_' || C == ':'
               ? C
               : '_';
  }
  if (Out.empty() || std::isdigit(static_cast<unsigned char>(Out[0])))
    Out.insert(Out.begin(), '_');
  return Out;
}

namespace {

/// Prometheus sample values: plain decimal, `NaN`/`+Inf`/`-Inf` spelled
/// out (unlike JSON, the text format can represent them).
std::string promNumber(double Value) {
  if (Value != Value)
    return "NaN";
  if (Value > 1.7976931348623157e308)
    return "+Inf";
  if (Value < -1.7976931348623157e308)
    return "-Inf";
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
  return Buffer;
}

void renderSummary(std::string &Out, const std::string &Base,
                   double P50, double P95, double P99, double Sum,
                   uint64_t Count) {
  Out += "# TYPE " + Base + " summary\n";
  Out += Base + "{quantile=\"0.5\"} " + promNumber(P50) + "\n";
  Out += Base + "{quantile=\"0.95\"} " + promNumber(P95) + "\n";
  Out += Base + "{quantile=\"0.99\"} " + promNumber(P99) + "\n";
  Out += Base + "_sum " + promNumber(Sum) + "\n";
  Out += Base + "_count " + std::to_string(Count) + "\n";
}

} // namespace

void rcs::monitor::updateSolverGauges(telemetry::Registry &Reg) {
  auto Ratio = [](uint64_t Num, uint64_t Den) {
    return Den ? static_cast<double>(Num) / static_cast<double>(Den) : 0.0;
  };
  uint64_t Reuses = Reg.counter("thermal.network.factor_reuses").value();
  uint64_t Factorizations =
      Reg.counter("thermal.network.factorizations").value();
  Reg.gauge("thermal.factor_cache.hit_rate")
      .set(Ratio(Reuses, Reuses + Factorizations));

  uint64_t Solves = Reg.counter("hydraulics.flow.solves").value();
  Reg.gauge("hydraulics.newton.mean_iterations")
      .set(Ratio(Reg.counter("hydraulics.newton.iterations").value(), Solves));
  Reg.gauge("hydraulics.newton.fallback_rate")
      .set(Ratio(Reg.counter("hydraulics.newton.analytic_fallbacks").value(),
                 Solves));
  Reg.gauge("hydraulics.newton.warm_start_rate")
      .set(Ratio(Reg.counter("hydraulics.newton.warm_starts").value(),
                 Solves));
}

std::string
rcs::monitor::renderPrometheus(const MetricsSnapshot &Snapshot,
                               std::string_view Prefix) {
  std::string P = prometheusName(Prefix);
  std::string Out;

  for (const auto &[Name, Value] : Snapshot.Counters) {
    std::string Base = P + "_" + prometheusName(Name) + "_total";
    Out += "# TYPE " + Base + " counter\n";
    Out += Base + " " + std::to_string(Value) + "\n";
  }

  for (const auto &[Name, Value] : Snapshot.Gauges) {
    std::string Base = P + "_" + prometheusName(Name);
    Out += "# TYPE " + Base + " gauge\n";
    Out += Base + " " + promNumber(Value) + "\n";
  }

  for (const auto &[Name, H] : Snapshot.Histograms)
    renderSummary(Out, P + "_" + prometheusName(Name), H.P50, H.P95,
                  H.P99, H.Sum, H.Count);

  // Timers lack stored quantiles; expose min/mean/max positions as the
  // 0/0.5/1 quantiles of a summary so dashboards get a spread.
  for (const auto &[Label, S] : Snapshot.Timers) {
    std::string Base = P + "_" + prometheusName(Label) + "_seconds";
    double Mean =
        S.Count ? S.TotalS / static_cast<double>(S.Count) : 0.0;
    Out += "# TYPE " + Base + " summary\n";
    Out += Base + "{quantile=\"0\"} " + promNumber(S.MinS) + "\n";
    Out += Base + "{quantile=\"0.5\"} " + promNumber(Mean) + "\n";
    Out += Base + "{quantile=\"1\"} " + promNumber(S.MaxS) + "\n";
    Out += Base + "_sum " + promNumber(S.TotalS) + "\n";
    Out += Base + "_count " + std::to_string(S.Count) + "\n";
  }
  return Out;
}

Status rcs::monitor::writePrometheusFile(const telemetry::Registry &Reg,
                                         const std::string &Path,
                                         std::string_view Prefix) {
  std::string Body = renderPrometheus(Reg.snapshotMetrics(), Prefix);
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return Status::error("cannot open prometheus file '" + Path + "'");
  size_t Written = std::fwrite(Body.data(), 1, Body.size(), Out);
  bool Ok = Written == Body.size() && std::fclose(Out) == 0;
  if (!Ok)
    return Status::error("short write to prometheus file '" + Path + "'");
  return Status::ok();
}

std::string
rcs::monitor::renderSnapshotLine(const MetricsSnapshot &Snapshot,
                                 double TimeS) {
  using telemetry::jsonNumber;
  using telemetry::jsonQuote;
  std::string Out = "{\"t_s\": " + jsonNumber(TimeS) + ", \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Snapshot.Counters) {
    Out += First ? "" : ", ";
    First = false;
    Out += jsonQuote(Name) + ": " + std::to_string(Value);
  }
  Out += "}, \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : Snapshot.Gauges) {
    Out += First ? "" : ", ";
    First = false;
    Out += jsonQuote(Name) + ": " + jsonNumber(Value);
  }
  Out += "}, \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Snapshot.Histograms) {
    Out += First ? "" : ", ";
    First = false;
    Out += jsonQuote(Name) + ": {\"count\": " + std::to_string(H.Count) +
           ", \"mean\": " + jsonNumber(H.Mean) +
           ", \"p50\": " + jsonNumber(H.P50) +
           ", \"p95\": " + jsonNumber(H.P95) +
           ", \"p99\": " + jsonNumber(H.P99) + "}";
  }
  Out += "}, \"timers\": {";
  First = true;
  for (const auto &[Label, S] : Snapshot.Timers) {
    Out += First ? "" : ", ";
    First = false;
    Out += jsonQuote(Label) + ": {\"count\": " + std::to_string(S.Count) +
           ", \"total_s\": " + jsonNumber(S.TotalS) + "}";
  }
  Out += "}}";
  return Out;
}

SnapshotWriter::SnapshotWriter(std::string PathIn, double PeriodSIn,
                               telemetry::Registry *RegIn)
    : Path(std::move(PathIn)), PeriodS(PeriodSIn),
      Reg(RegIn ? RegIn : &telemetry::Registry::global()) {
  Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    OpenStatus =
        Status::error("cannot open snapshot file '" + Path + "'");
}

SnapshotWriter::~SnapshotWriter() { (void)close(); }

Status SnapshotWriter::maybeSample(double SimTimeS) {
  if (Started && SimTimeS < NextSampleTimeS)
    return Status::ok();
  Started = true;
  NextSampleTimeS = SimTimeS + PeriodS;
  return sample(SimTimeS);
}

Status SnapshotWriter::sample(double SimTimeS) {
  if (!Out)
    return OpenStatus.isOk()
               ? Status::error("snapshot file already closed")
               : OpenStatus;
  updateSolverGauges(*Reg);
  std::string Line =
      renderSnapshotLine(Reg->snapshotMetrics(), SimTimeS) + "\n";
  if (std::fwrite(Line.data(), 1, Line.size(), Out) != Line.size())
    return Status::error("short write to snapshot file '" + Path + "'");
  ++NumSnapshots;
  Reg->counter("monitor.exposition.snapshots").add();
  return Status::ok();
}

Status SnapshotWriter::close() {
  if (!Out)
    return Status::ok();
  bool Ok = std::fflush(Out) == 0 && !std::ferror(Out);
  Ok = std::fclose(Out) == 0 && Ok;
  Out = nullptr;
  return Ok ? Status::ok()
            : Status::error("error writing snapshot file '" + Path + "'");
}
