//===- fluids/FluidComparison.h - Air-vs-liquid metrics ---------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derived comparison metrics behind the paper's Section 2 claims: liquid
/// heat capacity is 1500..4000x that of air, heat-transfer coefficients up
/// to 100x higher, heat flow ~70x more intensive at conventional velocity,
/// and one FPGA needs ~1 m^3 of air or ~250 ml of water per minute.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FLUIDS_FLUIDCOMPARISON_H
#define RCS_FLUIDS_FLUIDCOMPARISON_H

#include "fluids/Fluid.h"

namespace rcs {
namespace fluids {

/// Ratio of volumetric heat capacities (rho*cp) of \p Liquid to \p Gas at
/// \p TempC. The paper quotes 1500..4000 for common liquids vs air.
double volumetricHeatCapacityRatio(const Fluid &Liquid, const Fluid &Gas,
                                   double TempC);

/// Volume flow in m^3/s needed to absorb \p PowerW with a bulk temperature
/// rise of \p TempRiseC in \p Coolant entering at \p InletTempC.
double requiredVolumeFlowM3PerS(const Fluid &Coolant, double PowerW,
                                double InletTempC, double TempRiseC);

/// Forced-convection heat-transfer coefficient over a flat plate of length
/// \p PlateLengthM at free-stream velocity \p VelocityMPerS, W/(m^2*K).
///
/// Uses the laminar/turbulent flat-plate Nusselt correlations with a
/// transition Reynolds number of 5e5; this is the "similar surfaces at the
/// conventional velocity" comparison in Section 2.
double flatPlateHtcWPerM2K(const Fluid &F, double TempC,
                           double VelocityMPerS, double PlateLengthM);

/// Ratio of flat-plate heat flux of \p Liquid to \p Gas under identical
/// geometry, velocity and surface-to-bulk temperature difference.
double heatFlowIntensityRatio(const Fluid &Liquid, const Fluid &Gas,
                              double TempC, double VelocityMPerS,
                              double PlateLengthM);

} // namespace fluids
} // namespace rcs

#endif // RCS_FLUIDS_FLUIDCOMPARISON_H
