//===- fluids/SelectionCriteria.h - Coolant selection scoring --*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper (Section 2) lists the strict requirements an immersion
/// heat-transfer agent must satisfy: heat-transfer capacity, electrical
/// conduction (must be dielectric), viscosity, toxicity, fire safety,
/// parameter stability and reasonable cost. This module turns those
/// requirements into a quantitative score so the coolant choice the authors
/// made (a low-viscosity dielectric mineral oil) can be reproduced as an
/// optimization over candidate fluids.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FLUIDS_SELECTIONCRITERIA_H
#define RCS_FLUIDS_SELECTIONCRITERIA_H

#include "fluids/Fluid.h"

#include <string>
#include <vector>

namespace rcs {
namespace fluids {

/// Weights for each of the paper's selection requirements. Defaults follow
/// the emphasis of Section 2 (dielectric behaviour and heat transfer are
/// hard requirements, cost matters but less).
struct SelectionWeights {
  double HeatTransferWeight = 0.30; ///< rho*cp and conductivity.
  double ViscosityWeight = 0.20;    ///< Pumping cost and convection quality.
  double DielectricWeight = 0.25;   ///< Breakdown strength (hard gate for
                              ///< immersion).
  double FireSafetyWeight = 0.10;   ///< Flash-point margin over max operating T.
  double StabilityWeight = 0.05;    ///< Operating-range width as a proxy.
  double CostWeight = 0.10;         ///< Price per liter.
};

/// Per-criterion normalized scores in [0, 1] plus the weighted total.
struct SelectionScore {
  std::string FluidName;
  double HeatTransferScore = 0.0;
  double ViscosityScore = 0.0;
  double DielectricScore = 0.0;
  double FireSafetyScore = 0.0;
  double StabilityScore = 0.0;
  double CostScore = 0.0;
  double Total = 0.0;
  /// False when the fluid fails a hard gate (conducting liquid in an
  /// open-loop system); such fluids get Total = 0.
  bool PassesHardGates = true;
};

/// Scores one candidate at the expected operating temperature \p TempC.
SelectionScore scoreCoolant(const Fluid &Candidate, double TempC,
                            const SelectionWeights &Weights = {});

/// Scores all candidates and sorts by total, best first.
std::vector<SelectionScore>
rankCoolants(const std::vector<const Fluid *> &Candidates, double TempC,
             const SelectionWeights &Weights = {});

} // namespace fluids
} // namespace rcs

#endif // RCS_FLUIDS_SELECTIONCRITERIA_H
