//===- fluids/FluidComparison.cpp - Air-vs-liquid metrics ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluids/FluidComparison.h"

#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::fluids;

double rcs::fluids::volumetricHeatCapacityRatio(const Fluid &Liquid,
                                                const Fluid &Gas,
                                                double TempC) {
  return Liquid.volumetricHeatCapacityJPerM3K(TempC) /
         Gas.volumetricHeatCapacityJPerM3K(TempC);
}

double rcs::fluids::requiredVolumeFlowM3PerS(const Fluid &Coolant,
                                             double PowerW, double InletTempC,
                                             double TempRiseC) {
  assert(PowerW >= 0 && TempRiseC > 0 && "invalid flow sizing inputs");
  double MeanTempC = InletTempC + 0.5 * TempRiseC;
  double RhoCp = Coolant.volumetricHeatCapacityJPerM3K(MeanTempC);
  return PowerW / (RhoCp * TempRiseC);
}

double rcs::fluids::flatPlateHtcWPerM2K(const Fluid &F, double TempC,
                                        double VelocityMPerS,
                                        double PlateLengthM) {
  assert(VelocityMPerS > 0 && PlateLengthM > 0 && "invalid plate inputs");
  double Nu = F.kinematicViscosityM2PerS(TempC);
  double Re = VelocityMPerS * PlateLengthM / Nu;
  double Pr = F.prandtl(TempC);
  const double ReTransition = 5e5;
  double Nusselt = 0.0;
  if (Re < ReTransition) {
    Nusselt = 0.664 * std::sqrt(Re) * std::cbrt(Pr);
  } else {
    // Mixed boundary layer (Incropera eq. 7.38).
    Nusselt = (0.037 * std::pow(Re, 0.8) - 871.0) * std::cbrt(Pr);
  }
  return Nusselt * F.thermalConductivityWPerMK(TempC) / PlateLengthM;
}

double rcs::fluids::heatFlowIntensityRatio(const Fluid &Liquid,
                                           const Fluid &Gas, double TempC,
                                           double VelocityMPerS,
                                           double PlateLengthM) {
  double HLiquid =
      flatPlateHtcWPerM2K(Liquid, TempC, VelocityMPerS, PlateLengthM);
  double HGas = flatPlateHtcWPerM2K(Gas, TempC, VelocityMPerS, PlateLengthM);
  return HLiquid / HGas;
}
