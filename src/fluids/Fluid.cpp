//===- fluids/Fluid.cpp - Heat-transfer agent property models --------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Property tables are standard handbook values (Incropera & DeWitt for air
/// and water; transformer-oil handbooks for the mineral oils). The MD-4.5
/// analog follows the paper's description: a low-viscosity dielectric
/// mineral oil; its name encodes ~4.5 cSt kinematic viscosity at 40 C.
///
//===----------------------------------------------------------------------===//

#include "fluids/Fluid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::fluids;

Fluid::~Fluid() = default;

void Fluid::enablePropertyCache(double StepC) {
  assert(StepC > 0.0 && "property cache step must be positive");
  // Each table keeps its own native range so clamping behaves exactly like
  // the uncached accessor. The cell count rounds up, shrinking the actual
  // step to at most StepC.
  auto resample = [StepC](const LinearTable &Table) {
    double Range = Table.maxX() - Table.minX();
    size_t NumCells = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(Range / StepC)));
    return UniformTable(Table, Table.minX(), Table.maxX(), NumCells);
  };
  auto NewCache = std::make_unique<PropertyCache>();
  NewCache->Density = resample(Density);
  NewCache->SpecificHeat = resample(SpecificHeat);
  NewCache->Conductivity = resample(Conductivity);
  NewCache->Viscosity = resample(Viscosity);
  Cache = std::move(NewCache);
}

Fluid::Fluid(std::string NameIn, FluidKind KindIn, LinearTable DensityIn,
             LinearTable SpecificHeatIn, LinearTable ConductivityIn,
             LinearTable ViscosityIn, double MinTempCIn, double MaxTempCIn)
    : Name(std::move(NameIn)), Kind(KindIn), Density(std::move(DensityIn)),
      SpecificHeat(std::move(SpecificHeatIn)),
      Conductivity(std::move(ConductivityIn)),
      Viscosity(std::move(ViscosityIn)), MinTempC(MinTempCIn),
      MaxTempC(MaxTempCIn) {
  assert(MinTempC < MaxTempC && "inverted fluid operating range");
}

namespace {

/// Trivial concrete fluid; all behavior lives in the base class.
class TableFluid : public Fluid {
public:
  TableFluid(std::string Name, FluidKind Kind, LinearTable Density,
             LinearTable SpecificHeat, LinearTable Conductivity,
             LinearTable Viscosity, double MinTempC, double MaxTempC)
      : Fluid(std::move(Name), Kind, std::move(Density),
              std::move(SpecificHeat), std::move(Conductivity),
              std::move(Viscosity), MinTempC, MaxTempC) {}

  using Fluid::setCostPerLiter;
  using Fluid::setDielectricStrength;
  using Fluid::setFlashPoint;
};

} // namespace

std::unique_ptr<Fluid> rcs::fluids::makeAir() {
  auto F = std::make_unique<TableFluid>(
      "air (1 atm)", FluidKind::Gas,
      LinearTable{{-25.0, 1.422},
                  {0.0, 1.293},
                  {25.0, 1.184},
                  {50.0, 1.092},
                  {75.0, 1.015},
                  {100.0, 0.946}},
      LinearTable{{-25.0, 1006.0},
                  {0.0, 1006.0},
                  {25.0, 1007.0},
                  {50.0, 1008.0},
                  {75.0, 1009.0},
                  {100.0, 1011.0}},
      LinearTable{{-25.0, 0.0223},
                  {0.0, 0.0243},
                  {25.0, 0.0262},
                  {50.0, 0.0281},
                  {75.0, 0.0299},
                  {100.0, 0.0318}},
      LinearTable{{-25.0, 1.60e-5},
                  {0.0, 1.72e-5},
                  {25.0, 1.85e-5},
                  {50.0, 1.96e-5},
                  {75.0, 2.08e-5},
                  {100.0, 2.19e-5}},
      /*MinTempC=*/-25.0, /*MaxTempC=*/100.0);
  F->setCostPerLiter(0.0);
  return F;
}

std::unique_ptr<Fluid> rcs::fluids::makeWater() {
  auto F = std::make_unique<TableFluid>(
      "water", FluidKind::AqueousLiquid,
      LinearTable{{0.0, 999.8},
                  {20.0, 998.2},
                  {40.0, 992.2},
                  {60.0, 983.2},
                  {80.0, 971.8},
                  {100.0, 958.4}},
      LinearTable{{0.0, 4217.0},
                  {20.0, 4182.0},
                  {40.0, 4179.0},
                  {60.0, 4185.0},
                  {80.0, 4197.0},
                  {100.0, 4216.0}},
      LinearTable{{0.0, 0.561},
                  {20.0, 0.598},
                  {40.0, 0.631},
                  {60.0, 0.654},
                  {80.0, 0.670},
                  {100.0, 0.679}},
      LinearTable{{0.0, 1.792e-3},
                  {20.0, 1.002e-3},
                  {40.0, 0.653e-3},
                  {60.0, 0.467e-3},
                  {80.0, 0.355e-3},
                  {100.0, 0.282e-3}},
      /*MinTempC=*/0.5, /*MaxTempC=*/99.0);
  F->setCostPerLiter(0.02);
  return F;
}

std::unique_ptr<Fluid> rcs::fluids::makeGlycolSolution(double GlycolFraction) {
  assert(GlycolFraction >= 0.2 && GlycolFraction <= 0.5 &&
         "glycol fraction outside modeled range");
  // Tables are for 30% propylene glycol; scale first-order in fraction.
  double S = (GlycolFraction - 0.3) / 0.3;
  auto scale = [S](double Base, double Sens) { return Base * (1.0 + Sens * S); };
  LinearTable Density{{0.0, scale(1033.0, 0.015)},
                      {20.0, scale(1025.0, 0.015)},
                      {40.0, scale(1015.0, 0.015)},
                      {60.0, scale(1003.0, 0.015)},
                      {80.0, scale(990.0, 0.015)},
                      {100.0, scale(976.0, 0.015)}};
  LinearTable SpecificHeat{{0.0, scale(3730.0, -0.08)},
                           {20.0, scale(3780.0, -0.08)},
                           {40.0, scale(3830.0, -0.08)},
                           {60.0, scale(3880.0, -0.08)},
                           {80.0, scale(3930.0, -0.08)},
                           {100.0, scale(3980.0, -0.08)}};
  LinearTable Conductivity{{0.0, scale(0.45, -0.10)},
                           {20.0, scale(0.47, -0.10)},
                           {40.0, scale(0.49, -0.10)},
                           {60.0, scale(0.50, -0.10)},
                           {80.0, scale(0.51, -0.10)},
                           {100.0, scale(0.52, -0.10)}};
  LinearTable Viscosity{{0.0, scale(5.0e-3, 0.8)},
                        {20.0, scale(2.4e-3, 0.8)},
                        {40.0, scale(1.3e-3, 0.8)},
                        {60.0, scale(0.85e-3, 0.8)},
                        {80.0, scale(0.60e-3, 0.8)},
                        {100.0, scale(0.46e-3, 0.8)}};
  double FreezePointC = -3.0 - 40.0 * (GlycolFraction - 0.2) / 0.3;
  auto F = std::make_unique<TableFluid>(
      "propylene glycol solution", FluidKind::AqueousLiquid,
      std::move(Density), std::move(SpecificHeat), std::move(Conductivity),
      std::move(Viscosity), FreezePointC, 100.0);
  F->setCostPerLiter(2.5);
  return F;
}

std::unique_ptr<Fluid> rcs::fluids::makeMineralOilMd45() {
  // Kinematic viscosity anchors (cSt): 16 @0C, 8.5 @20C, 4.5 @40C,
  // 3.0 @60C, 2.2 @80C, 1.7 @100C; dynamic = nu * rho.
  LinearTable Density{{0.0, 887.0},  {20.0, 874.0}, {40.0, 861.0},
                      {60.0, 848.0}, {80.0, 835.0}, {100.0, 822.0}};
  LinearTable SpecificHeat{{0.0, 1800.0},  {20.0, 1880.0}, {40.0, 1960.0},
                           {60.0, 2040.0}, {80.0, 2120.0}, {100.0, 2200.0}};
  LinearTable Conductivity{{0.0, 0.134},  {20.0, 0.132}, {40.0, 0.130},
                           {60.0, 0.128}, {80.0, 0.126}, {100.0, 0.124}};
  LinearTable Viscosity{{0.0, 16.0e-6 * 887.0},  {20.0, 8.5e-6 * 874.0},
                        {40.0, 4.5e-6 * 861.0},  {60.0, 3.0e-6 * 848.0},
                        {80.0, 2.2e-6 * 835.0},  {100.0, 1.7e-6 * 822.0}};
  auto F = std::make_unique<TableFluid>(
      "mineral oil MD-4.5", FluidKind::DielectricLiquid, std::move(Density),
      std::move(SpecificHeat), std::move(Conductivity), std::move(Viscosity),
      /*MinTempC=*/-30.0, /*MaxTempC=*/110.0);
  F->setDielectricStrength(13.0);
  F->setFlashPoint(152.0);
  F->setCostPerLiter(6.0);
  return F;
}

std::unique_ptr<Fluid> rcs::fluids::makeEngineeredDielectric() {
  // The paper's custom agent: "best possible dielectric strength, high heat
  // transfer capacity, the maximum possible heat capacity and low
  // viscosity" relative to stock mineral oil.
  LinearTable Density{{0.0, 880.0},  {20.0, 868.0}, {40.0, 856.0},
                      {60.0, 844.0}, {80.0, 832.0}, {100.0, 820.0}};
  LinearTable SpecificHeat{{0.0, 1980.0},  {20.0, 2070.0}, {40.0, 2160.0},
                           {60.0, 2250.0}, {80.0, 2340.0}, {100.0, 2420.0}};
  LinearTable Conductivity{{0.0, 0.142},  {20.0, 0.140}, {40.0, 0.138},
                           {60.0, 0.136}, {80.0, 0.134}, {100.0, 0.132}};
  LinearTable Viscosity{{0.0, 11.0e-6 * 880.0},  {20.0, 6.0e-6 * 868.0},
                        {40.0, 3.2e-6 * 856.0},  {60.0, 2.2e-6 * 844.0},
                        {80.0, 1.7e-6 * 832.0},  {100.0, 1.35e-6 * 820.0}};
  auto F = std::make_unique<TableFluid>(
      "SKAT engineered dielectric", FluidKind::DielectricLiquid,
      std::move(Density), std::move(SpecificHeat), std::move(Conductivity),
      std::move(Viscosity), /*MinTempC=*/-35.0, /*MaxTempC=*/120.0);
  F->setDielectricStrength(18.0);
  F->setFlashPoint(198.0);
  F->setCostPerLiter(14.0);
  return F;
}

std::unique_ptr<Fluid> rcs::fluids::makeWhiteMineralOil() {
  // Heavier white oil typical of first-generation immersion tanks; its
  // higher viscosity is one of the shortcomings Section 2 lists.
  LinearTable Density{{0.0, 872.0},  {20.0, 860.0}, {40.0, 848.0},
                      {60.0, 836.0}, {80.0, 824.0}, {100.0, 812.0}};
  LinearTable SpecificHeat{{0.0, 1750.0},  {20.0, 1830.0}, {40.0, 1910.0},
                           {60.0, 1990.0}, {80.0, 2070.0}, {100.0, 2150.0}};
  LinearTable Conductivity{{0.0, 0.133},  {20.0, 0.131}, {40.0, 0.129},
                           {60.0, 0.127}, {80.0, 0.125}, {100.0, 0.123}};
  LinearTable Viscosity{{0.0, 120.0e-6 * 872.0}, {20.0, 48.0e-6 * 860.0},
                        {40.0, 21.0e-6 * 848.0}, {60.0, 11.5e-6 * 836.0},
                        {80.0, 7.2e-6 * 824.0},  {100.0, 5.0e-6 * 812.0}};
  auto F = std::make_unique<TableFluid>(
      "white mineral oil", FluidKind::DielectricLiquid, std::move(Density),
      std::move(SpecificHeat), std::move(Conductivity), std::move(Viscosity),
      /*MinTempC=*/-15.0, /*MaxTempC=*/110.0);
  F->setDielectricStrength(11.0);
  F->setFlashPoint(185.0);
  F->setCostPerLiter(4.0);
  return F;
}
