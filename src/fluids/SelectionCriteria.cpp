//===- fluids/SelectionCriteria.cpp - Coolant selection scoring ------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluids/SelectionCriteria.h"

#include <algorithm>
#include <cmath>

using namespace rcs;
using namespace rcs::fluids;

/// Maps \p Value onto [0,1] with 0 at \p Worst and 1 at \p Best (either
/// direction), clamping outside.
static double normalizeLinear(double Value, double Worst, double Best) {
  double T = (Value - Worst) / (Best - Worst);
  return std::clamp(T, 0.0, 1.0);
}

SelectionScore rcs::fluids::scoreCoolant(const Fluid &Candidate, double TempC,
                                         const SelectionWeights &Weights) {
  SelectionScore Score;
  Score.FluidName = Candidate.name();

  // Hard gate: an open-loop agent must be dielectric. Conducting liquids
  // (water, glycol) are usable only in closed loops.
  if (!Candidate.isDielectric()) {
    Score.PassesHardGates = false;
    return Score;
  }

  // Heat transfer: volumetric heat capacity (1.2e6 poor .. 2.2e6 excellent
  // for oils) blended with conductivity (0.10 .. 0.16 W/mK).
  double RhoCp = Candidate.volumetricHeatCapacityJPerM3K(TempC);
  double K = Candidate.thermalConductivityWPerMK(TempC);
  Score.HeatTransferScore = 0.6 * normalizeLinear(RhoCp, 1.2e6, 2.2e6) +
                            0.4 * normalizeLinear(K, 0.10, 0.16);

  // Viscosity: log-scale, 100 cSt poor .. 1 cSt excellent.
  double NuCst = Candidate.kinematicViscosityM2PerS(TempC) * 1e6;
  Score.ViscosityScore =
      normalizeLinear(std::log10(std::max(NuCst, 1e-3)), std::log10(100.0),
                      std::log10(1.0));

  // Dielectric strength: 8 kV/mm marginal .. 20 kV/mm excellent.
  double Breakdown = Candidate.dielectricStrengthKvPerMm().value_or(0.0);
  Score.DielectricScore = normalizeLinear(Breakdown, 8.0, 20.0);

  // Fire safety: flash-point margin above the maximum operating
  // temperature; 40 C margin marginal .. 120 C comfortable.
  double FlashMargin =
      Candidate.flashPointC().value_or(1e3) - Candidate.maxOperatingTempC();
  Score.FireSafetyScore = normalizeLinear(FlashMargin, 40.0, 120.0);

  // Stability proxy: width of the usable temperature window, 80..150 C.
  double Window =
      Candidate.maxOperatingTempC() - Candidate.minOperatingTempC();
  Score.StabilityScore = normalizeLinear(Window, 80.0, 150.0);

  // Cost: $20/l poor .. $2/l good.
  Score.CostScore = normalizeLinear(Candidate.costPerLiterUsd(), 20.0, 2.0);

  Score.Total = Weights.HeatTransferWeight * Score.HeatTransferScore +
                Weights.ViscosityWeight * Score.ViscosityScore +
                Weights.DielectricWeight * Score.DielectricScore +
                Weights.FireSafetyWeight * Score.FireSafetyScore +
                Weights.StabilityWeight * Score.StabilityScore +
                Weights.CostWeight * Score.CostScore;
  return Score;
}

std::vector<SelectionScore>
rcs::fluids::rankCoolants(const std::vector<const Fluid *> &Candidates,
                          double TempC, const SelectionWeights &Weights) {
  std::vector<SelectionScore> Scores;
  Scores.reserve(Candidates.size());
  for (const Fluid *Candidate : Candidates)
    Scores.push_back(scoreCoolant(*Candidate, TempC, Weights));
  std::stable_sort(Scores.begin(), Scores.end(),
                   [](const SelectionScore &A, const SelectionScore &B) {
                     return A.Total > B.Total;
                   });
  return Scores;
}
