//===- fluids/Fluid.h - Heat-transfer agent property models -----*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Temperature-dependent thermophysical property models for the
/// heat-transfer agents discussed in the paper: air, water, glycol
/// solutions, mineral oil (the MD-4.5 analog used in the SKAT modules) and
/// the custom engineered dielectric the authors developed.
///
/// All property accessors take the bulk fluid temperature in degrees
/// Celsius and return SI values. Properties are modeled as piecewise-linear
/// tables over each fluid's operating range and clamped outside it.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FLUIDS_FLUID_H
#define RCS_FLUIDS_FLUID_H

#include "support/Interp.h"
#include "support/Quantity.h"

#include <memory>
#include <optional>
#include <string>

namespace rcs {
namespace fluids {

/// Broad classification used by selection criteria and safety checks.
enum class FluidKind {
  Gas,             ///< Compressible gas coolant (air).
  AqueousLiquid,   ///< Electrically conducting liquid (water, glycol).
  DielectricLiquid ///< Immersion-safe dielectric liquid (oils).
};

/// A heat-transfer agent with temperature-dependent properties.
///
/// Subclasses provide property tables; this base class provides derived
/// quantities (kinematic viscosity, Prandtl number, volumetric heat
/// capacity) and metadata used by the paper's coolant selection criteria
/// (dielectric strength, flash point, cost).
class Fluid {
public:
  virtual ~Fluid();

  /// Human-readable fluid name, e.g. "mineral oil MD-4.5".
  const std::string &name() const { return Name; }

  FluidKind kind() const { return Kind; }

  /// True when the fluid can directly contact energized electronics.
  bool isDielectric() const { return Kind == FluidKind::DielectricLiquid; }

  /// Density in kg/m^3 at \p TempC.
  double densityKgPerM3(double TempC) const {
    return Cache ? Cache->Density.evaluate(TempC) : Density.evaluate(TempC);
  }

  /// Isobaric specific heat in J/(kg*K) at \p TempC.
  double specificHeatJPerKgK(double TempC) const {
    return Cache ? Cache->SpecificHeat.evaluate(TempC)
                 : SpecificHeat.evaluate(TempC);
  }

  /// Thermal conductivity in W/(m*K) at \p TempC.
  double thermalConductivityWPerMK(double TempC) const {
    return Cache ? Cache->Conductivity.evaluate(TempC)
                 : Conductivity.evaluate(TempC);
  }

  /// Dynamic viscosity in Pa*s at \p TempC.
  double dynamicViscosityPaS(double TempC) const {
    return Cache ? Cache->Viscosity.evaluate(TempC) : Viscosity.evaluate(TempC);
  }

  /// \name Property-table cache
  /// Opt-in resampling of the four property tables onto uniform
  /// temperature grids so accessors become O(1) index lookups instead of
  /// binary searches — useful when a solver evaluates properties millions
  /// of times per run. With the default 0.25 C step every knot of the
  /// built-in fluids lands exactly on the grid, so cached values agree
  /// with the exact tables up to floating-point rounding (~1e-15
  /// relative); clamping outside the table range is identical.
  /// @{
  void enablePropertyCache(double StepC = 0.25);
  void disablePropertyCache() { Cache.reset(); }
  bool propertyCacheEnabled() const { return Cache != nullptr; }
  /// @}

  /// Kinematic viscosity in m^2/s at \p TempC.
  double kinematicViscosityM2PerS(double TempC) const {
    return dynamicViscosityPaS(TempC) / densityKgPerM3(TempC);
  }

  /// Prandtl number at \p TempC.
  double prandtl(double TempC) const {
    return specificHeatJPerKgK(TempC) * dynamicViscosityPaS(TempC) /
           thermalConductivityWPerMK(TempC);
  }

  /// Volumetric heat capacity rho*cp in J/(m^3*K) at \p TempC.
  double volumetricHeatCapacityJPerM3K(double TempC) const {
    return densityKgPerM3(TempC) * specificHeatJPerKgK(TempC);
  }

  /// Thermal diffusivity k/(rho*cp) in m^2/s at \p TempC.
  double thermalDiffusivityM2PerS(double TempC) const {
    return thermalConductivityWPerMK(TempC) /
           volumetricHeatCapacityJPerM3K(TempC);
  }

  /// \name Dimension-checked property evaluators
  /// Typed mirrors of the accessors above (see support/Quantity.h). New
  /// code should prefer these: a swapped argument or a Kelvin passed where
  /// Celsius is expected fails to compile. The double forms remain the
  /// thin escape hatch for table-driven and solver-internal code.
  /// @{
  units::KgPerM3 density(units::Celsius T) const {
    return units::KgPerM3(densityKgPerM3(T.value()));
  }
  units::JoulesPerKgKelvin specificHeat(units::Celsius T) const {
    return units::JoulesPerKgKelvin(specificHeatJPerKgK(T.value()));
  }
  units::WattsPerMeterKelvin thermalConductivity(units::Celsius T) const {
    return units::WattsPerMeterKelvin(thermalConductivityWPerMK(T.value()));
  }
  units::PascalSeconds dynamicViscosity(units::Celsius T) const {
    return units::PascalSeconds(dynamicViscosityPaS(T.value()));
  }
  units::M2PerS kinematicViscosity(units::Celsius T) const {
    return units::M2PerS(kinematicViscosityM2PerS(T.value()));
  }
  units::JoulesPerM3Kelvin volumetricHeatCapacity(units::Celsius T) const {
    return units::JoulesPerM3Kelvin(volumetricHeatCapacityJPerM3K(T.value()));
  }
  units::M2PerS thermalDiffusivity(units::Celsius T) const {
    return units::M2PerS(thermalDiffusivityM2PerS(T.value()));
  }
  units::Scalar prandtlNumber(units::Celsius T) const {
    return units::Scalar(prandtl(T.value()));
  }
  units::Celsius minOperatingTemp() const {
    return units::Celsius(MinTempC);
  }
  units::Celsius maxOperatingTemp() const {
    return units::Celsius(MaxTempC);
  }
  /// @}

  /// Lowest safe bulk temperature (freezing / pour point margin).
  double minOperatingTempC() const { return MinTempC; }

  /// Highest safe bulk temperature (boiling / degradation margin).
  double maxOperatingTempC() const { return MaxTempC; }

  /// Breakdown field strength in kV/mm; nullopt for conducting fluids.
  std::optional<double> dielectricStrengthKvPerMm() const {
    return DielectricStrengthKvPerMm;
  }

  /// Flash point in Celsius; nullopt for non-flammable fluids.
  std::optional<double> flashPointC() const { return FlashPointTempC; }

  /// Indicative price used by the selection-criteria scoring.
  double costPerLiterUsd() const { return CostPerLiterUsd; }

protected:
  Fluid(std::string Name, FluidKind Kind, LinearTable Density,
        LinearTable SpecificHeat, LinearTable Conductivity,
        LinearTable Viscosity, double MinTempC, double MaxTempC);

  void setDielectricStrength(double KvPerMm) {
    DielectricStrengthKvPerMm = KvPerMm;
  }
  void setFlashPoint(double TempC) { FlashPointTempC = TempC; }
  void setCostPerLiter(double Usd) { CostPerLiterUsd = Usd; }

private:
  struct PropertyCache {
    UniformTable Density;
    UniformTable SpecificHeat;
    UniformTable Conductivity;
    UniformTable Viscosity;
  };

  std::string Name;
  FluidKind Kind;
  LinearTable Density;
  LinearTable SpecificHeat;
  LinearTable Conductivity;
  LinearTable Viscosity;
  std::unique_ptr<PropertyCache> Cache;
  double MinTempC;
  double MaxTempC;
  std::optional<double> DielectricStrengthKvPerMm;
  std::optional<double> FlashPointTempC;
  double CostPerLiterUsd = 0.0;
};

/// Dry air at one atmosphere.
std::unique_ptr<Fluid> makeAir();

/// Liquid water at one atmosphere (0..100 C).
std::unique_ptr<Fluid> makeWater();

/// Propylene-glycol/water solution; \p GlycolFraction in [0.2, 0.5].
std::unique_ptr<Fluid> makeGlycolSolution(double GlycolFraction);

/// Low-viscosity mineral oil modeled after the MD-4.5 agent the paper's
/// SKAT modules circulate (nu ~ 4.5 cSt at 40 C).
std::unique_ptr<Fluid> makeMineralOilMd45();

/// The engineered dielectric the authors developed for SKAT: mineral-oil
/// base with improved heat capacity, lower viscosity and higher breakdown
/// strength (paper Section 3).
std::unique_ptr<Fluid> makeEngineeredDielectric();

/// Generic white mineral oil as used by early immersion systems (higher
/// viscosity than MD-4.5); baseline for the coolant-selection experiments.
std::unique_ptr<Fluid> makeWhiteMineralOil();

} // namespace fluids
} // namespace rcs

#endif // RCS_FLUIDS_FLUID_H
