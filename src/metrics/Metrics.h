//===- metrics/Metrics.h - Efficiency and density metrics -------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The figures of merit the paper argues with: real performance, specific
/// (per-volume) performance, energy efficiency, and power usage
/// effectiveness. Used by the generation-comparison and rack experiments.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_METRICS_METRICS_H
#define RCS_METRICS_METRICS_H

#include "system/Cooling.h"
#include "system/Module.h"

#include <string>

namespace rcs {
namespace metrics {

/// Efficiency summary of one solved module.
struct ModuleEfficiency {
  std::string Name;
  double PeakGflops = 0.0;
  double ItPowerW = 0.0;
  double TotalPowerW = 0.0;       ///< IT + PSU loss + pumps/fans.
  double GflopsPerWatt = 0.0;     ///< Peak throughput per total watt.
  double GflopsPerU = 0.0;        ///< Packing / specific performance.
  double BoardsPerU = 0.0;
  double MaxJunctionTempC = 0.0;
  /// Facility-level PUE contribution assuming a chiller at the given COP
  /// for liquid heat and CRAC-class efficiency for air heat.
  double EstimatedPue = 0.0;
};

/// Computes efficiency metrics for a solved module.
///
/// \p ChillerCop is used to estimate facility cooling energy for the heat
/// the module rejects to liquid; air heat is charged at a CRAC COP of 2.5.
ModuleEfficiency
computeModuleEfficiency(const rcsystem::ComputationalModule &Module,
                        const rcsystem::ModuleThermalReport &Report,
                        double ChillerCop = 6.0);

/// Ratio helpers for generation comparisons (paper Section 3: SKAT is
/// 8.7x Taygeta in performance and > 3x in packing density).
struct GenerationGain {
  double PerformanceRatio = 0.0;
  double PackingDensityRatio = 0.0; ///< Boards per U.
  double SpecificPerformanceRatio = 0.0; ///< GFLOPS per U.
  double EfficiencyRatio = 0.0;     ///< GFLOPS/W.
};

/// Compares \p Next against \p Previous.
GenerationGain compareGenerations(const ModuleEfficiency &Previous,
                                  const ModuleEfficiency &Next);

} // namespace metrics
} // namespace rcs

#endif // RCS_METRICS_METRICS_H
