//===- metrics/Metrics.cpp - Efficiency and density metrics --------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "metrics/Metrics.h"

#include <cassert>

using namespace rcs;
using namespace rcs::metrics;

ModuleEfficiency rcs::metrics::computeModuleEfficiency(
    const rcsystem::ComputationalModule &Module,
    const rcsystem::ModuleThermalReport &Report, double ChillerCop) {
  assert(ChillerCop > 0 && "COP must be positive");
  ModuleEfficiency Out;
  Out.Name = Module.config().Name;
  Out.PeakGflops = Module.peakGflops();
  Out.ItPowerW = Report.ItPowerW;
  Out.TotalPowerW = Report.ItPowerW + Report.PsuLossW + Report.PumpPowerW +
                    Report.FanPowerW;
  Out.GflopsPerWatt =
      Out.TotalPowerW > 0.0 ? Out.PeakGflops / Out.TotalPowerW : 0.0;
  Out.GflopsPerU = Module.gflopsPerU();
  Out.BoardsPerU = Module.boardsPerU();
  Out.MaxJunctionTempC = Report.MaxJunctionTempC;

  // Facility estimate: liquid-borne heat is removed at the chiller COP,
  // air-borne heat at a CRAC-class COP of 2.5.
  const double CracCop = 2.5;
  double LiquidHeat = Report.HxDutyW;
  double AirHeat = Report.TotalHeatW - LiquidHeat;
  if (AirHeat < 0.0)
    AirHeat = 0.0;
  double CoolingPower = LiquidHeat / ChillerCop + AirHeat / CracCop;
  double Facility = Out.TotalPowerW + CoolingPower;
  Out.EstimatedPue = Report.ItPowerW > 0.0 ? Facility / Report.ItPowerW : 0.0;
  return Out;
}

GenerationGain
rcs::metrics::compareGenerations(const ModuleEfficiency &Previous,
                                 const ModuleEfficiency &Next) {
  GenerationGain Gain;
  if (Previous.PeakGflops > 0.0)
    Gain.PerformanceRatio = Next.PeakGflops / Previous.PeakGflops;
  if (Previous.BoardsPerU > 0.0)
    Gain.PackingDensityRatio = Next.BoardsPerU / Previous.BoardsPerU;
  if (Previous.GflopsPerU > 0.0)
    Gain.SpecificPerformanceRatio = Next.GflopsPerU / Previous.GflopsPerU;
  if (Previous.GflopsPerWatt > 0.0)
    Gain.EfficiencyRatio = Next.GflopsPerWatt / Previous.GflopsPerWatt;
  return Gain;
}
